//! Counters, gauges, and log-bucketed histograms with text exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: 16 exact buckets for values `0..=15`,
/// then four log-linear sub-buckets per power of two up to `u64::MAX`.
const BUCKETS: usize = 256;

/// A log-bucketed histogram of unsigned integer samples (microseconds,
/// bytes, ...).
///
/// Values `0..=15` each get an exact bucket; larger values fall into one
/// of four log-linear sub-buckets per octave, bounding the relative
/// quantile error at 25% while keeping the whole histogram a flat 2 KiB
/// array. Recording is O(1) and never allocates after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < 16 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as u64; // >= 4
            let sub = (value >> (msb - 2)) & 3;
            (16 + (msb - 4) * 4 + sub) as usize
        }
    }

    /// The inclusive `(low, high)` value range of a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 256`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        if index < 16 {
            (index as u64, index as u64)
        } else {
            let k = (index - 16) as u64;
            let msb = 4 + k / 4;
            let sub = k % 4;
            let width = 1u64 << (msb - 2);
            let low = (1u64 << msb) + sub * width;
            (low, low + (width - 1))
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper-bound estimate of the `p`-quantile (`p` in `[0, 1]`),
    /// clamped into the observed `[min, max]` range. Returns 0 if the
    /// histogram is empty.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// rank-`ceil(p * count)` sample, so it is exact for values below 16
    /// and within 25% above.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bounds(i).1.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median estimate (`percentile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Metric names are `&'static str` so the hot path never allocates; use
/// `snake_case` names ending in a unit suffix (`_us`, `_total`, ...) so
/// the Prometheus exposition is well-formed.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// `true` if no metric has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `v` to the named monotonic counter (created at 0 on first use).
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// The current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// The current value of a gauge, or `None` if never set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records a sample into the named histogram (created on first use).
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// The named histogram, or `None` if no sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// prefixing each metric name with `prefix` + `_`. Histograms are
    /// rendered as summaries with p50/p95/p99 quantiles.
    pub fn prometheus(&self, prefix: &str) -> String {
        let mut out = String::with_capacity(1024);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {prefix}_{name} counter");
            let _ = writeln!(out, "{prefix}_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {prefix}_{name} gauge");
            let _ = writeln!(out, "{prefix}_{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {prefix}_{name} summary");
            let _ = writeln!(out, "{prefix}_{name}{{quantile=\"0.5\"}} {}", h.p50());
            let _ = writeln!(out, "{prefix}_{name}{{quantile=\"0.95\"}} {}", h.p95());
            let _ = writeln!(out, "{prefix}_{name}{{quantile=\"0.99\"}} {}", h.p99());
            let _ = writeln!(out, "{prefix}_{name}_sum {}", h.sum());
            let _ = writeln!(out, "{prefix}_{name}_count {}", h.count());
        }
        out
    }

    /// Renders every metric as one JSON object
    /// (`{"counters":{...},"gauges":{...},"histograms":{...}}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.p50(),
                h.p95(),
                h.p99(),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_boundaries_partition_the_u64_range() {
        // Every bucket's high bound + 1 must be the next bucket's low bound.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = Histogram::bucket_bounds(i);
            let (lo_next, _) = Histogram::bucket_bounds(i + 1);
            assert_eq!(
                hi + 1,
                lo_next,
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(Histogram::bucket_bounds(0).0, 0);
        assert_eq!(Histogram::bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn boundary_values_land_in_their_own_bucket() {
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "low bound of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high bound of bucket {i}");
            if hi > lo {
                assert_eq!(
                    Histogram::bucket_index(lo + (hi - lo) / 2),
                    i,
                    "midpoint of bucket {i}"
                );
            }
        }
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.observe(1_000);
        for p in [0.0, 0.5, 0.99, 1.0] {
            // Clamping into [min, max] makes a single sample exact even
            // though its bucket spans a range.
            assert_eq!(h.percentile(p), 1_000, "p={p}");
        }
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(h.percentile(1.0) == 10_000);
        // Log-linear buckets with 4 sub-buckets bound relative error at 25%.
        assert!((4_000..=6_500).contains(&p50), "{p50}");
        assert!((9_000..=10_000).contains(&p99), "{p99}");
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10_000));
    }

    #[test]
    fn exact_range_percentiles_are_exact() {
        // All samples below 16 → every quantile is exact.
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.observe(v);
        }
        assert_eq!(h.p50(), 5);
        assert_eq!(h.percentile(0.1), 1);
        assert_eq!(h.percentile(1.0), 10);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(0);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.counter_add("frames_total", 2);
        m.counter_add("frames_total", 3);
        assert_eq!(m.counter("frames_total"), 5);
        assert_eq!(m.counter("never_touched"), 0);
        m.gauge_set("srtt_us", 200);
        m.gauge_set("srtt_us", 150);
        assert_eq!(m.gauge("srtt_us"), Some(150));
        assert_eq!(m.gauge("never_touched"), None);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = MetricsRegistry::new();
        m.counter_add("frames_total", 600);
        m.gauge_set("srtt_us", 200_000);
        for v in 0..100u64 {
            m.observe("frame_time_us", 16_000 + v);
        }
        let text = m.prometheus("coplay");
        assert!(text.contains("# TYPE coplay_frames_total counter\ncoplay_frames_total 600\n"));
        assert!(text.contains("# TYPE coplay_srtt_us gauge\ncoplay_srtt_us 200000\n"));
        assert!(text.contains("# TYPE coplay_frame_time_us summary"));
        assert!(text.contains("coplay_frame_time_us{quantile=\"0.5\"}"));
        assert!(text.contains("coplay_frame_time_us{quantile=\"0.95\"}"));
        assert!(text.contains("coplay_frame_time_us{quantile=\"0.99\"}"));
        assert!(text.contains("coplay_frame_time_us_count 100\n"));
    }

    #[test]
    fn json_snapshot_shape() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a_total", 1);
        m.gauge_set("g", -2);
        m.observe("h_us", 7);
        let json = m.to_json();
        assert!(json.starts_with("{\"counters\":{\"a_total\":1}"));
        assert!(json.contains("\"gauges\":{\"g\":-2}"));
        assert!(json.contains(
            "\"h_us\":{\"count\":1,\"sum\":7,\"min\":7,\"max\":7,\"p50\":7,\"p95\":7,\"p99\":7}"
        ));
    }
}
