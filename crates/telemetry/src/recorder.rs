//! Fixed-capacity ring buffer of session events.

use crate::event::{Event, EventKind};
use coplay_clock::SimTime;
use std::collections::VecDeque;

/// A bounded in-memory trace of the most recent session events.
///
/// When the buffer is full the *oldest* event is discarded, so a dump
/// after an incident always shows the events leading up to it. The number
/// of discarded events is tracked so a reader can tell whether the trace
/// is complete.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    dropped: u64,
    /// How many of the dropped events were [`EventKind::Span`] records —
    /// tracked separately so trace consumers can tell a complete span
    /// chain from one with holes eaten by wraparound.
    dropped_spans: u64,
    events: VecDeque<Event>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be non-zero");
        FlightRecorder {
            capacity,
            dropped: 0,
            dropped_spans: 0,
            events: VecDeque::with_capacity(capacity),
        }
    }

    /// The maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events have been discarded to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// How many of the discarded events were span records.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, at: SimTime, kind: EventKind) {
        if self.events.len() == self.capacity {
            if let Some(old) = self.events.pop_front() {
                self.dropped += 1;
                if matches!(old.kind, EventKind::Span { .. }) {
                    self.dropped_spans += 1;
                }
            }
        }
        self.events.push_back(Event { at, kind });
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Copies the retained events out, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().copied().collect()
    }

    /// Dumps the retained events as JSON Lines (one object per line),
    /// oldest first, with a trailing newline after each line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            e.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Discards all retained events and resets the drop counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.dropped_spans = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_event(n: u64) -> EventKind {
        EventKind::FrameBegun { frame: n }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let mut r = FlightRecorder::new(8);
        for n in 0..5 {
            r.record(SimTime::from_micros(n), frame_event(n));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let times: Vec<u64> = r.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let mut r = FlightRecorder::new(4);
        for n in 0..10 {
            r.record(SimTime::from_micros(n), frame_event(n));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let frames: Vec<u64> = r
            .iter()
            .map(|e| match e.kind {
                EventKind::FrameBegun { frame } => frame,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(frames, vec![6, 7, 8, 9], "oldest events are evicted first");
    }

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let mut r = FlightRecorder::new(1);
        r.record(SimTime::from_micros(1), frame_event(1));
        r.record(SimTime::from_micros(2), frame_event(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_vec()[0].at.as_micros(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut r = FlightRecorder::new(8);
        r.record(SimTime::from_micros(1), frame_event(1));
        r.record(SimTime::from_micros(2), frame_event(2));
        let dump = r.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn span_drops_are_counted_separately() {
        use crate::span::SpanStage;
        let mut r = FlightRecorder::new(2);
        // Two spans, then enough frame events to evict both spans plus one
        // frame event.
        for n in 0..2 {
            r.record(
                SimTime::from_micros(n),
                EventKind::Span {
                    stage: SpanStage::Sampled,
                    frame: n,
                    peer: 0,
                },
            );
        }
        for n in 2..5 {
            r.record(SimTime::from_micros(n), frame_event(n));
        }
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.dropped_spans(), 2, "only the span evictions count");
        r.clear();
        assert_eq!(r.dropped_spans(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = FlightRecorder::new(2);
        for n in 0..5 {
            r.record(SimTime::from_micros(n), frame_event(n));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.to_jsonl().is_empty());
    }
}
