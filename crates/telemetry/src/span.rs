//! Frame-lifecycle span stages for input-word tracing.
//!
//! Every input word a session handles moves through a causal chain of
//! stages: it is *sampled* on its origin site, *encoded* into an outbound
//! datagram, *sent*, *received* by a peer, *merged* into that peer's frame
//! input, *confirmed* authoritative, and finally *presented* when the frame
//! executes. A speculative (rollback) site adds the repair stages:
//! *predicted*, *mispredicted*, *checkpoint-restored* and *resimulated*.
//!
//! A span record is deliberately tiny — a stage tag, the frame number, and
//! a peer site — so tracing costs one flight-recorder slot per stage. The
//! `(session, site)` half of the correlation key is constant per handle and
//! lives in the trace-dump header (see
//! [`Telemetry::trace_jsonl`](crate::Telemetry::trace_jsonl)) rather than
//! being repeated on every record.

/// One stage of an input word's frame-lifecycle span chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanStage {
    /// The word was sampled from the local input source and buffered at
    /// its lagged frame (`frame + buf_frames`).
    Sampled,
    /// The word entered an outbound input message for the first time.
    Encoded,
    /// The datagram carrying the word's first transmission left this site.
    Sent,
    /// The word arrived at a peer for the first time (fresh, not a
    /// retransmission).
    Received,
    /// The word was merged into its frame's complete input vector.
    Merged,
    /// The frame containing the word became authoritative (lockstep:
    /// at execution; rollback: when the confirmed frontier passed it).
    Confirmed,
    /// A rollback site executed the frame with a *predicted* value for
    /// this peer's word instead of the authoritative one.
    Predicted,
    /// The authoritative word arrived and disagreed with the prediction.
    Mispredicted,
    /// A checkpoint at this frame was restored to begin a repair.
    CheckpointRestored,
    /// The frame was re-executed during a rollback repair.
    Resimulated,
    /// The frame executed and its output was (notionally) displayed.
    Presented,
}

impl SpanStage {
    /// Every stage, in nominal lifecycle order.
    pub const ALL: [SpanStage; 11] = [
        SpanStage::Sampled,
        SpanStage::Encoded,
        SpanStage::Sent,
        SpanStage::Received,
        SpanStage::Merged,
        SpanStage::Confirmed,
        SpanStage::Predicted,
        SpanStage::Mispredicted,
        SpanStage::CheckpointRestored,
        SpanStage::Resimulated,
        SpanStage::Presented,
    ];

    /// Stable machine-readable name, used as the `"stage"` field in JSONL
    /// trace dumps.
    pub const fn name(self) -> &'static str {
        match self {
            SpanStage::Sampled => "sampled",
            SpanStage::Encoded => "encoded",
            SpanStage::Sent => "sent",
            SpanStage::Received => "received",
            SpanStage::Merged => "merged",
            SpanStage::Confirmed => "confirmed",
            SpanStage::Predicted => "predicted",
            SpanStage::Mispredicted => "mispredicted",
            SpanStage::CheckpointRestored => "checkpoint_restored",
            SpanStage::Resimulated => "resimulated",
            SpanStage::Presented => "presented",
        }
    }

    /// Parses a [`name`](SpanStage::name) back to its stage.
    pub fn from_name(name: &str) -> Option<SpanStage> {
        SpanStage::ALL.into_iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for stage in SpanStage::ALL {
            assert_eq!(SpanStage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(SpanStage::from_name("nonsense"), None);
    }

    #[test]
    fn names_are_unique() {
        for (i, a) in SpanStage::ALL.iter().enumerate() {
            for b in &SpanStage::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
