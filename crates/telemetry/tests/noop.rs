//! Proves the disabled (no-op) telemetry sink is allocation-free.
//!
//! This file holds exactly one test so no sibling test thread can allocate
//! concurrently and pollute the counter.

use coplay_clock::{SimDuration, SimTime};
use coplay_telemetry::{EventKind, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_sink_adds_no_events_and_never_allocates() {
    let tel = Telemetry::disabled();

    let hammer = |tel: &Telemetry| {
        for frame in 0..100_000u64 {
            let now = SimTime::from_micros(frame * 16_667);
            tel.record(now, EventKind::FrameBegun { frame });
            tel.record(
                now,
                EventKind::FrameExecuted {
                    frame,
                    frame_time: SimDuration::from_micros(16_667),
                },
            );
            tel.counter_add("frames_total", 1);
            tel.observe("frame_time_us", 16_667);
            tel.gauge_set("srtt_us", 42);
        }
    };

    // Warm up any lazy one-time initialization, then measure several times
    // and take the cleanest run: a real per-call allocation would show up
    // ~500 000 times in *every* run, while unrelated runtime threads can
    // add a stray allocation to any single run.
    hammer(&tel);
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        hammer(&tel);
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        best = best.min(after - before);
    }

    assert_eq!(best, 0, "no-op sink must not allocate on the hot path");
    assert_eq!(tel.event_count(), 0, "no-op sink must not record events");
    assert_eq!(tel.counter("frames_total"), 0);
}
