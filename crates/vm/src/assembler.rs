//! A two-pass assembler for the coplay console ISA.
//!
//! Lets games ship as human-readable source (see `coplay-games`' ROM
//! titles), which is how we stand in for the thousands of legacy ROM images
//! the paper's MAME build can load. Syntax:
//!
//! ```text
//! ; line comment
//! .title "Pong"        ; ROM metadata
//! .players 2
//! .seed 1234
//! .org 0x0100          ; move the location counter
//! .equ SPEED, 3        ; named constant
//! main:
//!     ldi r0, SPEED
//!     addi r0, 1
//!     cmpi r0, 10
//!     jlt main
//!     yield
//!     jmp main
//! table:
//!     .word 1, 2, main ; labels usable in data
//!     .byte 0x10, 255
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::isa::{Instruction, Reg, Syscall, INSTR_SIZE};
use crate::rom::Rom;

/// An assembly failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles `source` into a ROM.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad
/// operand, duplicate or undefined label, value out of range).
///
/// # Examples
///
/// ```
/// use coplay_vm::assemble;
///
/// let rom = assemble(
///     r#"
///     .title "Tiny"
///     loop:
///         addi r0, 1
///         yield
///         jmp loop
///     "#,
/// )?;
/// assert_eq!(rom.title(), "Tiny");
/// # Ok::<(), coplay_vm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Rom, AsmError> {
    let mut asm = Assembler::default();
    asm.pass1(source)?;
    asm.pass2(source)
}

#[derive(Default)]
struct Assembler {
    labels: BTreeMap<String, u16>,
    equs: BTreeMap<String, u16>,
    title: String,
    players: u8,
    cfps: u32,
    seed: u32,
    entry: Option<String>,
}

/// A parsed line: optional label, optional statement body.
fn split_line(line: &str) -> (Option<&str>, &str) {
    let line = match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    };
    let line = line.trim();
    if let Some(colon) = line.find(':') {
        let (label, rest) = line.split_at(colon);
        // A ':' inside a string (e.g. a .title) is not a label separator.
        if label.chars().all(|c| c.is_alphanumeric() || c == '_') && !label.is_empty() {
            return (Some(label), rest[1..].trim());
        }
    }
    (None, line)
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

impl Assembler {
    fn pass1(&mut self, source: &str) -> Result<(), AsmError> {
        let mut pc: u32 = 0;
        for (n, raw) in source.lines().enumerate() {
            let lineno = n + 1;
            let (label, body) = split_line(raw);
            if let Some(l) = label {
                if self.labels.insert(l.to_string(), pc as u16).is_some() {
                    return Err(err(lineno, format!("duplicate label `{l}`")));
                }
            }
            if body.is_empty() {
                continue;
            }
            let (word, rest) = take_word(body);
            match word.to_ascii_lowercase().as_str() {
                ".org" => {
                    pc = self.number(rest.trim(), lineno)? as u32;
                }
                ".byte" => pc += rest.split(',').count() as u32,
                ".word" => pc += 2 * rest.split(',').count() as u32,
                ".equ" => {
                    let (name, value) = rest
                        .split_once(',')
                        .ok_or_else(|| err(lineno, ".equ needs `name, value`"))?;
                    let v = self.number(value.trim(), lineno)?;
                    self.equs.insert(name.trim().to_string(), v);
                }
                ".title" | ".players" | ".cfps" | ".seed" | ".entry" => {}
                w if w.starts_with('.') => {
                    return Err(err(lineno, format!("unknown directive `{w}`")));
                }
                _ => pc += INSTR_SIZE as u32,
            }
            if pc > crate::cpu::MEM_SIZE as u32 {
                return Err(err(lineno, "program exceeds 64 KiB address space"));
            }
        }
        Ok(())
    }

    fn pass2(&mut self, source: &str) -> Result<Rom, AsmError> {
        let mut image = vec![0u8; 0];
        let mut pc: usize = 0;
        let emit = |image: &mut Vec<u8>, pc: &mut usize, bytes: &[u8]| {
            if image.len() < *pc + bytes.len() {
                image.resize(*pc + bytes.len(), 0);
            }
            image[*pc..*pc + bytes.len()].copy_from_slice(bytes);
            *pc += bytes.len();
        };
        for (n, raw) in source.lines().enumerate() {
            let lineno = n + 1;
            let (_, body) = split_line(raw);
            if body.is_empty() {
                continue;
            }
            let (word, rest) = take_word(body);
            let rest = rest.trim();
            match word.to_ascii_lowercase().as_str() {
                ".org" => pc = self.number(rest, lineno)? as usize,
                ".byte" => {
                    for item in rest.split(',') {
                        let v = self.value(item.trim(), lineno)?;
                        if v > 0xFF {
                            return Err(err(lineno, format!("byte value {v} out of range")));
                        }
                        emit(&mut image, &mut pc, &[v as u8]);
                    }
                }
                ".word" => {
                    for item in rest.split(',') {
                        let v = self.value(item.trim(), lineno)?;
                        emit(&mut image, &mut pc, &v.to_le_bytes());
                    }
                }
                ".equ" => {}
                ".title" => self.title = parse_string(rest, lineno)?,
                ".players" => self.players = self.number(rest, lineno)? as u8,
                ".cfps" => self.cfps = self.number(rest, lineno)? as u32,
                ".seed" => self.seed = self.number(rest, lineno)? as u32,
                ".entry" => self.entry = Some(rest.to_string()),
                _ => {
                    let instr = self.instruction(word, rest, lineno)?;
                    emit(&mut image, &mut pc, &instr.encode());
                }
            }
        }
        let entry = match &self.entry {
            Some(label) => *self
                .labels
                .get(label)
                .ok_or_else(|| err(0, format!("undefined entry label `{label}`")))?,
            None => 0,
        };
        Ok(Rom::builder(if self.title.is_empty() {
            "untitled".to_string()
        } else {
            self.title.clone()
        })
        .players(if self.players == 0 { 2 } else { self.players })
        .cfps(if self.cfps == 0 { 60 } else { self.cfps })
        .seed(self.seed)
        .entry(entry)
        .image(image)
        .build())
    }

    /// Parses a bare numeric literal (no labels) — used by directives that
    /// run during pass 1.
    fn number(&self, s: &str, lineno: usize) -> Result<u16, AsmError> {
        parse_number(s).ok_or_else(|| err(lineno, format!("expected a number, found `{s}`")))
    }

    /// Parses a numeric literal, label, or .equ constant.
    fn value(&self, s: &str, lineno: usize) -> Result<u16, AsmError> {
        if let Some(v) = parse_number(s) {
            return Ok(v);
        }
        if let Some(&v) = self.equs.get(s).or_else(|| self.labels.get(s)) {
            return Ok(v);
        }
        Err(err(lineno, format!("undefined symbol `{s}`")))
    }

    fn register(&self, s: &str, lineno: usize) -> Result<Reg, AsmError> {
        let s = s.trim();
        let idx = s
            .strip_prefix(['r', 'R'])
            .and_then(|d| d.parse::<u8>().ok())
            .filter(|&d| d < 16)
            .ok_or_else(|| err(lineno, format!("expected register r0-r15, found `{s}`")))?;
        Ok(Reg(idx))
    }

    /// Parses `[rN+off]` or `[rN]`.
    fn mem_operand(&self, s: &str, lineno: usize) -> Result<(Reg, u8), AsmError> {
        let inner = s
            .trim()
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| err(lineno, format!("expected `[rN+off]`, found `{s}`")))?;
        let (reg, off) = match inner.split_once('+') {
            Some((r, o)) => {
                let off = self.value(o.trim(), lineno)?;
                if off > 0xFF {
                    return Err(err(lineno, format!("offset {off} out of byte range")));
                }
                (r, off as u8)
            }
            None => (inner, 0u8),
        };
        Ok((self.register(reg, lineno)?, off))
    }

    fn instruction(
        &self,
        mnemonic: &str,
        rest: &str,
        lineno: usize,
    ) -> Result<Instruction, AsmError> {
        use Instruction as I;
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            split_operands(rest)
        };
        let argc = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!("`{mnemonic}` expects {n} operand(s), found {}", ops.len()),
                ))
            }
        };
        let m = mnemonic.to_ascii_lowercase();
        Ok(match m.as_str() {
            "nop" => {
                argc(0)?;
                I::Nop
            }
            "halt" => {
                argc(0)?;
                I::Halt
            }
            "yield" => {
                argc(0)?;
                I::Yield
            }
            "ret" => {
                argc(0)?;
                I::Ret
            }
            "ldi" | "addi" | "subi" | "cmpi" | "shli" | "shri" => {
                argc(2)?;
                let rd = self.register(ops[0], lineno)?;
                let imm = self.value(ops[1], lineno)?;
                match m.as_str() {
                    "ldi" => I::Ldi(rd, imm),
                    "addi" => I::Addi(rd, imm),
                    "subi" => I::Subi(rd, imm),
                    "cmpi" => I::Cmpi(rd, imm),
                    "shli" => I::Shli(rd, imm),
                    _ => I::Shri(rd, imm),
                }
            }
            "mov" | "add" | "sub" | "mul" | "div" | "modu" | "and" | "or" | "xor" | "cmp" => {
                argc(2)?;
                let rd = self.register(ops[0], lineno)?;
                let rs = self.register(ops[1], lineno)?;
                match m.as_str() {
                    "mov" => I::Mov(rd, rs),
                    "add" => I::Add(rd, rs),
                    "sub" => I::Sub(rd, rs),
                    "mul" => I::Mul(rd, rs),
                    "div" => I::Div(rd, rs),
                    "modu" => I::Modu(rd, rs),
                    "and" => I::And(rd, rs),
                    "or" => I::Or(rd, rs),
                    "xor" => I::Xor(rd, rs),
                    _ => I::Cmp(rd, rs),
                }
            }
            "neg" | "push" | "pop" | "rnd" => {
                argc(1)?;
                let r = self.register(ops[0], lineno)?;
                match m.as_str() {
                    "neg" => I::Neg(r),
                    "push" => I::Push(r),
                    "pop" => I::Pop(r),
                    _ => I::Rnd(r),
                }
            }
            "jmp" | "jz" | "jnz" | "jlt" | "jge" | "call" => {
                argc(1)?;
                let a = self.value(ops[0], lineno)?;
                match m.as_str() {
                    "jmp" => I::Jmp(a),
                    "jz" => I::Jz(a),
                    "jnz" => I::Jnz(a),
                    "jlt" => I::Jlt(a),
                    "jge" => I::Jge(a),
                    _ => I::Call(a),
                }
            }
            "ldw" | "ldb" => {
                argc(2)?;
                let rd = self.register(ops[0], lineno)?;
                let (rs, off) = self.mem_operand(ops[1], lineno)?;
                if m == "ldw" {
                    I::Ldw(rd, rs, off)
                } else {
                    I::Ldb(rd, rs, off)
                }
            }
            "stw" | "stb" => {
                argc(2)?;
                let (rd, off) = self.mem_operand(ops[0], lineno)?;
                let rs = self.register(ops[1], lineno)?;
                if m == "stw" {
                    I::Stw(rd, rs, off)
                } else {
                    I::Stb(rd, rs, off)
                }
            }
            "in" => {
                argc(2)?;
                let rd = self.register(ops[0], lineno)?;
                let port = self.value(ops[1], lineno)?;
                if port > 0xFF {
                    return Err(err(lineno, format!("port {port} out of range")));
                }
                I::In(rd, port as u8)
            }
            "sys" => {
                argc(1)?;
                let n = self.value(ops[0], lineno)?;
                let call = u8::try_from(n)
                    .ok()
                    .and_then(Syscall::from_u8)
                    .ok_or_else(|| err(lineno, format!("unknown syscall {n}")))?;
                I::Sys(call)
            }
            other => return Err(err(lineno, format!("unknown mnemonic `{other}`"))),
        })
    }
}

fn take_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

fn split_operands(s: &str) -> Vec<&str> {
    // Commas inside `[...]` do not occur in this ISA, so a flat split works.
    s.split(',').map(str::trim).collect()
}

fn parse_number(s: &str) -> Option<u16> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u16::from_str_radix(hex, 16).ok();
    }
    if let Some(neg) = s.strip_prefix('-') {
        return neg
            .parse::<u16>()
            .ok()
            .map(|v| (v as i32).wrapping_neg() as u16);
    }
    s.parse::<u16>().ok()
}

fn parse_string(s: &str, lineno: usize) -> Result<String, AsmError> {
    let s = s.trim();
    s.strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(lineno, "expected a double-quoted string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_metadata_and_code() {
        let rom = assemble(
            r#"
            .title "Meta Test"
            .players 4
            .cfps 30
            .seed 0x55
            start:
                ldi r0, 1
                halt
            .entry start
            "#,
        )
        .unwrap();
        assert_eq!(rom.title(), "Meta Test");
        assert_eq!(rom.players(), 4);
        assert_eq!(rom.cfps(), 30);
        assert_eq!(rom.seed(), 0x55);
        assert_eq!(rom.entry(), 0);
        assert_eq!(rom.image().len(), 8);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let rom = assemble(
            r#"
            back:
                jmp fwd
                nop
            fwd:
                jmp back
            "#,
        )
        .unwrap();
        // jmp fwd -> address 8; jmp back -> address 0.
        assert_eq!(&rom.image()[0..4], &Instruction::Jmp(8).encode());
        assert_eq!(&rom.image()[8..12], &Instruction::Jmp(0).encode());
    }

    #[test]
    fn equ_constants_work() {
        let rom = assemble(
            r#"
            .equ SPEED, 7
                ldi r1, SPEED
            "#,
        )
        .unwrap();
        assert_eq!(&rom.image()[0..4], &Instruction::Ldi(Reg(1), 7).encode());
    }

    #[test]
    fn org_and_data_directives() {
        let rom = assemble(
            r#"
            .org 0x10
            data:
                .word 0x1234, data
                .byte 1, 2, 3
            "#,
        )
        .unwrap();
        let img = rom.image();
        assert_eq!(&img[0x10..0x12], &[0x34, 0x12]);
        assert_eq!(&img[0x12..0x14], &[0x10, 0x00]); // label value
        assert_eq!(&img[0x14..0x17], &[1, 2, 3]);
    }

    #[test]
    fn memory_operands_parse() {
        let rom = assemble(
            r#"
                ldw r1, [r2+4]
                stw [r3], r4
                ldb r5, [r6+0x10]
                stb [r7+1], r8
            "#,
        )
        .unwrap();
        let img = rom.image();
        assert_eq!(&img[0..4], &Instruction::Ldw(Reg(1), Reg(2), 4).encode());
        assert_eq!(&img[4..8], &Instruction::Stw(Reg(3), Reg(4), 0).encode());
        assert_eq!(
            &img[8..12],
            &Instruction::Ldb(Reg(5), Reg(6), 0x10).encode()
        );
        assert_eq!(&img[12..16], &Instruction::Stb(Reg(7), Reg(8), 1).encode());
    }

    #[test]
    fn negative_literals_wrap() {
        let rom = assemble("ldi r0, -1").unwrap();
        assert_eq!(
            &rom.image()[0..4],
            &Instruction::Ldi(Reg(0), 0xFFFF).encode()
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let rom = assemble("; nothing\n\n   ; still nothing\nnop ; trailing\n").unwrap();
        assert_eq!(rom.image().len(), 4);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\n nop\na:\n nop").unwrap_err();
        assert!(e.message.contains("duplicate label"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn undefined_symbol_rejected() {
        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.message.contains("undefined symbol"));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("frobnicate r0").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn wrong_operand_count_rejected() {
        let e = assemble("ldi r0").unwrap_err();
        assert!(e.message.contains("expects 2 operand"));
    }

    #[test]
    fn bad_register_rejected() {
        let e = assemble("ldi r16, 0").unwrap_err();
        assert!(e.message.contains("expected register"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = assemble(".frob 1").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn entry_label_must_exist() {
        let e = assemble(".entry missing\nnop").unwrap_err();
        assert!(e.message.contains("undefined entry label"));
    }

    #[test]
    fn sys_mnemonics() {
        let rom = assemble("sys 0\nsys 2").unwrap();
        assert_eq!(&rom.image()[0..4], &Instruction::Sys(Syscall::Cls).encode());
        assert_eq!(
            &rom.image()[4..8],
            &Instruction::Sys(Syscall::Rect).encode()
        );
        let e = assemble("sys 9").unwrap_err();
        assert!(e.message.contains("unknown syscall"));
    }

    #[test]
    fn error_display_includes_line() {
        let e = assemble("nop\nbadop").unwrap_err();
        assert_eq!(e.to_string(), "line 2: unknown mnemonic `badop`");
    }
}

/// Disassembles a code region into assembler-compatible text, one
/// instruction per line (illegal encodings render as `.word` directives).
///
/// Round-trips with [`assemble`]: feeding the output back produces the
/// identical image bytes for legal code.
///
/// # Examples
///
/// ```
/// use coplay_vm::{assemble, disassemble};
///
/// let rom = assemble("ldi r1, 7\nyield\n")?;
/// let text = disassemble(rom.image());
/// assert_eq!(text, "ldi r1, 0x0007\nyield\n");
/// let again = assemble(&text)?;
/// assert_eq!(again.image(), rom.image());
/// # Ok::<(), coplay_vm::AsmError>(())
/// ```
pub fn disassemble(code: &[u8]) -> String {
    let mut out = String::new();
    for chunk in code.chunks(INSTR_SIZE as usize) {
        if chunk.len() < INSTR_SIZE as usize {
            for b in chunk {
                out.push_str(&format!(".byte 0x{b:02x}\n"));
            }
            break;
        }
        let bytes = [chunk[0], chunk[1], chunk[2], chunk[3]];
        match Instruction::decode(bytes) {
            Some(i) => out.push_str(&format!("{i}\n")),
            None => out.push_str(&format!(
                ".word 0x{:04x}, 0x{:04x}\n",
                u16::from_le_bytes([bytes[0], bytes[1]]),
                u16::from_le_bytes([bytes[2], bytes[3]])
            )),
        }
    }
    out
}

#[cfg(test)]
mod disasm_tests {
    use super::*;

    #[test]
    fn disassembly_reassembles_to_identical_bytes() {
        let rom = assemble(
            r#"
            start:
                ldi r0, 5
                cmpi r0, 9
                jlt start
                ldw r3, [r4+8]
                sys 2
                halt
            "#,
        )
        .unwrap();
        let text = disassemble(rom.image());
        let again = assemble(&text).unwrap();
        assert_eq!(again.image(), rom.image());
    }

    #[test]
    fn illegal_bytes_become_word_directives() {
        let text = disassemble(&[0xFF, 0x01, 0x02, 0x03]);
        assert!(text.starts_with(".word"));
        let rom = assemble(&text).unwrap();
        assert_eq!(rom.image(), &[0xFF, 0x01, 0x02, 0x03]);
    }

    #[test]
    fn trailing_fragment_becomes_bytes() {
        let text = disassemble(&[0x00, 0x00, 0x00, 0x00, 0xAB, 0xCD]);
        assert!(text.contains(".byte 0xab"));
        assert!(text.contains(".byte 0xcd"));
    }
}
