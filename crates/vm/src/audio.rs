//! The virtual audio device: a deterministic square-wave beeper.
//!
//! One channel, 44.1 kHz, integer phase accumulation — every replica
//! produces bit-identical sample buffers, so audio participates in the
//! determinism contract like everything else.

/// Samples generated per second.
pub const SAMPLE_RATE: u32 = 44_100;

/// A single square-wave voice that renders one frame of audio at a time.
///
/// # Examples
///
/// ```
/// use coplay_vm::AudioChannel;
///
/// let mut ch = AudioChannel::new();
/// ch.tone(440, 2, 8_000);
/// let frame = ch.render_frame(60).to_vec();
/// assert!(frame.iter().any(|&s| s != 0));
/// ```
#[derive(Debug, Clone)]
pub struct AudioChannel {
    freq_hz: u32,
    frames_left: u32,
    volume: i16,
    phase: u32, // fixed-point phase accumulator (1/65536 cycles)
    buffer: Vec<i16>,
    /// Set whenever the serialized state ([`AudioChannel::save`]) may
    /// have changed since the last snapshot capture; consumed by
    /// [`AudioChannel::take_dirty`]. At 14 bytes the channel is tracked
    /// as a single all-or-nothing page.
    dirty: bool,
}

/// Equality compares only the audible state (tone parameters, phase, and
/// the rendered buffer). The dirty flag is capture bookkeeping: two
/// channels in identical states but with different snapshot histories
/// are still equal.
impl PartialEq for AudioChannel {
    fn eq(&self, other: &Self) -> bool {
        self.freq_hz == other.freq_hz
            && self.frames_left == other.frames_left
            && self.volume == other.volume
            && self.phase == other.phase
            && self.buffer == other.buffer
    }
}

impl Eq for AudioChannel {}

impl AudioChannel {
    /// Creates a silent channel.
    pub fn new() -> AudioChannel {
        AudioChannel {
            freq_hz: 0,
            frames_left: 0,
            volume: 0,
            phase: 0,
            // detlint: allow(hot_alloc) -- constructor; the buffer is reused across every rendered frame
            buffer: Vec::new(),
            // No snapshot has seen this channel yet.
            dirty: true,
        }
    }

    /// Starts a tone of `freq_hz` for `frames` video frames at `volume`.
    /// A new tone replaces any tone still sounding.
    pub fn tone(&mut self, freq_hz: u32, frames: u32, volume: i16) {
        self.freq_hz = freq_hz;
        self.frames_left = frames;
        self.volume = volume;
        self.dirty = true;
    }

    /// Stops any sounding tone immediately.
    pub fn silence(&mut self) {
        self.frames_left = 0;
        self.dirty = true;
    }

    /// `true` while a tone is sounding.
    pub fn is_active(&self) -> bool {
        self.frames_left > 0 && self.freq_hz > 0 && self.volume != 0
    }

    /// Renders the samples for one video frame at `cfps` frames/second and
    /// returns them. The buffer is valid until the next call.
    pub fn render_frame(&mut self, cfps: u32) -> &[i16] {
        let n = (SAMPLE_RATE / cfps.max(1)) as usize;
        self.buffer.clear();
        self.buffer.reserve(n);
        if self.is_active() {
            // Phase step in 1/65536 cycles per sample.
            let step = ((self.freq_hz as u64) << 16) / SAMPLE_RATE as u64;
            for _ in 0..n {
                self.phase = self.phase.wrapping_add(step as u32);
                let high = self.phase & 0x8000 != 0;
                self.buffer
                    .push(if high { self.volume } else { -self.volume });
            }
            self.frames_left -= 1;
            self.dirty = true;
        } else {
            self.buffer.resize(n, 0);
        }
        &self.buffer
    }

    /// Advances channel state by one video frame **without rendering**:
    /// the phase accumulator and tone countdown end up byte-identical to a
    /// [`AudioChannel::render_frame`] call, but no samples are produced
    /// and the last rendered buffer is left untouched (stale).
    ///
    /// This is the headless-resimulation path — O(1) instead of one
    /// wrapping add per sample, valid because `n` identical wrapping adds
    /// of the truncated step equal one wrapping add of `step * n`.
    pub fn advance_frame(&mut self, cfps: u32) {
        if self.is_active() {
            let n = SAMPLE_RATE / cfps.max(1);
            let step = (((self.freq_hz as u64) << 16) / SAMPLE_RATE as u64) as u32;
            self.phase = self.phase.wrapping_add(step.wrapping_mul(n));
            self.frames_left -= 1;
            self.dirty = true;
        }
    }

    /// Takes (returns and clears) the dirty flag.
    pub(crate) fn take_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.dirty, false)
    }

    /// Re-marks the channel dirty (restore paths call this so the next
    /// incremental capture rewrites the audio region).
    pub(crate) fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// The most recently rendered frame of samples.
    pub fn last_frame(&self) -> &[i16] {
        &self.buffer
    }

    /// Serializes channel state (not the sample buffer) for save states.
    pub fn save(&self) -> [u8; 14] {
        let mut out = [0u8; 14];
        out[0..4].copy_from_slice(&self.freq_hz.to_le_bytes());
        out[4..8].copy_from_slice(&self.frames_left.to_le_bytes());
        out[8..10].copy_from_slice(&self.volume.to_le_bytes());
        out[10..14].copy_from_slice(&self.phase.to_le_bytes());
        out
    }

    /// Restores state written by [`AudioChannel::save`].
    pub fn load(&mut self, bytes: &[u8; 14]) {
        // detlint: allow(panic_path) -- fixed-size input; every window is statically in range
        self.freq_hz = u32::from_le_bytes(bytes[0..4].try_into().expect("slice len 4"));
        // detlint: allow(panic_path) -- fixed-size input; every window is statically in range
        self.frames_left = u32::from_le_bytes(bytes[4..8].try_into().expect("slice len 4"));
        // detlint: allow(panic_path) -- fixed-size input; every window is statically in range
        self.volume = i16::from_le_bytes(bytes[8..10].try_into().expect("slice len 2"));
        // detlint: allow(panic_path) -- fixed-size input; every window is statically in range
        self.phase = u32::from_le_bytes(bytes[10..14].try_into().expect("slice len 4"));
        self.dirty = true;
    }
}

impl Default for AudioChannel {
    fn default() -> Self {
        AudioChannel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_channel_renders_zeros() {
        let mut ch = AudioChannel::new();
        let f = ch.render_frame(60);
        assert_eq!(f.len(), 735);
        assert!(f.iter().all(|&s| s == 0));
    }

    #[test]
    fn tone_renders_square_wave_and_expires() {
        let mut ch = AudioChannel::new();
        ch.tone(1_000, 2, 100);
        assert!(ch.is_active());
        let f = ch.render_frame(60).to_vec();
        assert!(f.contains(&100) && f.contains(&-100));
        let _ = ch.render_frame(60);
        assert!(!ch.is_active());
        assert!(ch.render_frame(60).iter().all(|&s| s == 0));
    }

    #[test]
    fn silence_cuts_tone_short() {
        let mut ch = AudioChannel::new();
        ch.tone(440, 100, 50);
        ch.silence();
        assert!(!ch.is_active());
    }

    #[test]
    fn rendering_is_deterministic() {
        let run = || {
            let mut ch = AudioChannel::new();
            ch.tone(440, 3, 1000);
            let mut all = Vec::new();
            for _ in 0..3 {
                all.extend_from_slice(ch.render_frame(60));
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn save_load_roundtrip_preserves_phase() {
        let mut a = AudioChannel::new();
        a.tone(440, 10, 500);
        let _ = a.render_frame(60);
        let saved = a.save();

        let mut b = AudioChannel::new();
        b.load(&saved);
        assert_eq!(a.render_frame(60), b.render_frame(60));
    }

    #[test]
    fn advance_frame_matches_render_frame_state_exactly() {
        // Walk both paths through active frames, tone expiry, and idle
        // frames: serialized channel state must stay byte-identical.
        let mut rendered = AudioChannel::new();
        let mut advanced = AudioChannel::new();
        rendered.tone(443, 3, 750); // odd frequency: truncated phase step
        advanced.tone(443, 3, 750);
        for _ in 0..6 {
            let _ = rendered.render_frame(60);
            advanced.advance_frame(60);
            assert_eq!(rendered.save(), advanced.save());
        }
        // And a subsequent presented frame renders identical samples.
        rendered.tone(440, 2, 500);
        advanced.tone(440, 2, 500);
        let _ = rendered.render_frame(60);
        advanced.advance_frame(60);
        assert_eq!(
            rendered.render_frame(60).to_vec(),
            advanced.render_frame(60)
        );
    }

    #[test]
    fn dirty_flag_tracks_state_changes() {
        let mut ch = AudioChannel::new();
        assert!(ch.take_dirty(), "fresh channel starts dirty");
        assert!(!ch.take_dirty());
        let _ = ch.render_frame(60); // inactive: serialized state unchanged
        assert!(!ch.take_dirty());
        ch.tone(440, 2, 100);
        assert!(ch.take_dirty());
        let _ = ch.render_frame(60); // active: phase and countdown advance
        assert!(ch.take_dirty());
        ch.advance_frame(60); // expires the tone
        assert!(ch.take_dirty());
        ch.advance_frame(60); // inactive advance is a state no-op
        assert!(!ch.take_dirty());
        ch.load(&[0u8; 14]);
        assert!(ch.take_dirty(), "restore re-marks");
    }

    #[test]
    fn frequency_roughly_honoured() {
        let mut ch = AudioChannel::new();
        ch.tone(1_000, 1, 100);
        let f = ch.render_frame(60);
        // Count zero crossings: a 1kHz square over 1/60s has ~33 edges.
        let crossings = f.windows(2).filter(|w| w[0] != w[1]).count();
        assert!((25..45).contains(&crossings), "crossings={crossings}");
    }
}
