//! The complete virtual arcade board.
//!
//! [`Console`] wires the CPU core to the virtual video, audio, and input
//! devices and exposes the whole board as a [`Machine`] — the black box the
//! sync layer replicates. This is our stand-in for the paper's MAME build:
//! load any [`Rom`] and the board runs it deterministically at its declared
//! frame rate.

use crate::audio::AudioChannel;
use crate::cpu::{Cpu, Devices, MEM_SIZE};
use crate::dirty::DirtyPages;
use crate::hash::StateHasher;
use crate::input::InputWord;
use crate::isa::Syscall;
use crate::machine::{Machine, MachineInfo, StateError, StepMode};
use crate::predecode::{InterpMode, InterpStats};
use crate::rom::Rom;
use crate::video::{Color, FrameBuffer};

/// Default CPU cycles (instructions) per video frame.
pub const DEFAULT_CYCLES_PER_FRAME: u32 = 20_000;

const STATE_MAGIC: &[u8; 5] = b"CPST1";

// Byte layout of the serialized console image (see `save_state_into`):
// a fixed head (magic, ROM hash, frame counter, CPU registers/flags/RNG)
// followed by the three bulk regions, each zero-padded to a dirty-page
// boundary. The incremental capture/restore paths dispatch byte ranges
// of the image onto these regions; page alignment makes each CPU memory
// page and framebuffer page land on exactly one image page, so a dirty
// page costs one image page of bandwidth and — crucially — the re-marks
// a restore performs round-trip to the *same* pages instead of widening
// by one page per capture/restore cycle.
const HEAD_LEN: usize = STATE_MAGIC.len() + 8 + 8 + Cpu::SMALL_LEN;
const MEM_OFF: usize = crate::dirty::PAGE_SIZE;
const AUD_OFF: usize = MEM_OFF + MEM_SIZE;
const AUD_LEN: usize = 14;
const FB_OFF: usize = AUD_OFF + crate::dirty::PAGE_SIZE;
const _: () = assert!(HEAD_LEN <= MEM_OFF && AUD_LEN <= FB_OFF - AUD_OFF);
const _: () = assert!(MEM_OFF.is_multiple_of(crate::dirty::PAGE_SIZE));
const _: () = assert!(FB_OFF.is_multiple_of(crate::dirty::PAGE_SIZE));

/// A coplay arcade board with a loaded cartridge.
///
/// # Examples
///
/// ```
/// use coplay_vm::{assemble, Console, InputWord, Machine};
///
/// let rom = assemble(
///     r#"
///     .title "Counter"
///     loop:
///         addi r0, 1
///         yield
///         jmp loop
///     "#,
/// )?;
/// let mut console = Console::new(rom);
/// console.step_frame(InputWord::NONE);
/// assert_eq!(console.frame(), 1);
/// # Ok::<(), coplay_vm::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Console {
    rom: Rom,
    cpu: Cpu,
    fb: FrameBuffer,
    audio: AudioChannel,
    frame: u64,
    cycles_per_frame: u32,
}

impl Console {
    /// Powers on a board with `rom` inserted.
    pub fn new(rom: Rom) -> Console {
        let mut cpu = Cpu::new(rom.entry(), rom.seed());
        cpu.load_image(rom.image());
        // Console snapshots embed the surface, so the framebuffer must
        // maintain its dirty bitmap (native games skip this — their
        // save_state never serializes pixels).
        let mut fb = FrameBuffer::standard();
        fb.enable_dirty_tracking();
        Console {
            cpu,
            fb,
            audio: AudioChannel::new(),
            frame: 0,
            rom,
            cycles_per_frame: DEFAULT_CYCLES_PER_FRAME,
        }
    }

    /// Overrides the per-frame cycle budget (default
    /// [`DEFAULT_CYCLES_PER_FRAME`]).
    pub fn with_cycle_budget(mut self, cycles: u32) -> Console {
        self.cycles_per_frame = cycles.max(1);
        self
    }

    /// Selects the interpreter loop (default [`InterpMode::Predecoded`]).
    /// The mode survives [`Machine::reset`] and never affects game state —
    /// both loops are byte-for-byte equivalent.
    pub fn with_interp_mode(mut self, mode: InterpMode) -> Console {
        self.cpu.set_interp_mode(mode);
        self
    }

    /// The interpreter loop this board runs.
    pub fn interp_mode(&self) -> InterpMode {
        self.cpu.interp_mode()
    }

    /// The inserted cartridge.
    pub fn rom(&self) -> &Rom {
        &self.rom
    }

    /// `true` once the program halted or faulted.
    pub fn is_halted(&self) -> bool {
        self.cpu.is_halted()
    }

    /// Direct CPU access for debuggers and tests.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Total length in bytes of the serialized state image.
    fn state_len(&self) -> usize {
        FB_OFF + self.fb.pixels().len()
    }

    /// The fixed head of the image: magic, ROM hash, frame counter, and
    /// the CPU's non-memory state.
    fn head_bytes(&self) -> [u8; HEAD_LEN] {
        let mut head = [0u8; HEAD_LEN];
        head[..STATE_MAGIC.len()].copy_from_slice(STATE_MAGIC);
        head[5..13].copy_from_slice(&self.rom.content_hash().to_le_bytes());
        head[13..21].copy_from_slice(&self.frame.to_le_bytes());
        head[21..].copy_from_slice(&self.cpu.serialize_small());
        head
    }

    /// Copies bytes `[s, e)` of the serialized image into `out`,
    /// dispatching each overlapped region to its live source. `out` must
    /// be a full-image buffer and `e` at most its length.
    fn write_state_range(&self, head: &[u8; HEAD_LEN], out: &mut [u8], s: usize, e: usize) {
        let mut pos = s;
        while pos < e {
            if pos < HEAD_LEN {
                let stop = e.min(HEAD_LEN);
                out[pos..stop].copy_from_slice(&head[pos..stop]);
                pos = stop;
            } else if pos < MEM_OFF {
                // Padding between head and memory is always zero.
                let stop = e.min(MEM_OFF);
                out[pos..stop].fill(0);
                pos = stop;
            } else if pos < AUD_OFF {
                let stop = e.min(AUD_OFF);
                out[pos..stop]
                    .copy_from_slice(&self.cpu.mem_bytes()[pos - MEM_OFF..stop - MEM_OFF]);
                pos = stop;
            } else if pos < AUD_OFF + AUD_LEN {
                let stop = e.min(AUD_OFF + AUD_LEN);
                let aud = self.audio.save();
                out[pos..stop].copy_from_slice(&aud[pos - AUD_OFF..stop - AUD_OFF]);
                pos = stop;
            } else if pos < FB_OFF {
                // Padding between audio and framebuffer is always zero.
                let stop = e.min(FB_OFF);
                out[pos..stop].fill(0);
                pos = stop;
            } else {
                out[pos..e].copy_from_slice(&self.fb.pixels()[pos - FB_OFF..e - FB_OFF]);
                pos = e;
            }
        }
    }
}

/// The device bus the CPU sees during one frame.
struct Bus<'a> {
    fb: &'a mut FrameBuffer,
    audio: &'a mut AudioChannel,
    input: InputWord,
    frame: u64,
    /// When set, draw syscalls are dropped (the frame will never be
    /// presented). `Tone` is **not** skipped: it mutates serialized audio
    /// registers, which are authoritative state.
    headless: bool,
}

impl Devices for Bus<'_> {
    fn input_port(&mut self, port: u8) -> u16 {
        match port {
            0 => self.input.0 as u16,
            1 => (self.input.0 >> 16) as u16,
            2 => self.frame as u16,
            3 => (self.frame >> 16) as u16,
            _ => 0,
        }
    }

    fn syscall(&mut self, call: Syscall, regs: &[u16; 16]) {
        // Coordinates are signed 16-bit so games can move sprites partially
        // off-screen; the framebuffer clips.
        let s = |v: u16| v as i16 as i32;
        match call {
            // Tone mutates save-state-covered audio registers, so it runs
            // in every mode; the arms below it only touch pixels and are
            // dropped for frames that will never be presented.
            Syscall::Tone => self
                .audio
                .tone(regs[1] as u32, regs[2] as u32, regs[3] as i16),
            _ if self.headless => {}
            Syscall::Cls => self.fb.clear(Color(regs[1] as u8)),
            Syscall::Pix => self
                .fb
                .set_pixel(s(regs[1]), s(regs[2]), Color(regs[3] as u8)),
            Syscall::Rect => self.fb.fill_rect(
                s(regs[1]),
                s(regs[2]),
                s(regs[3]),
                s(regs[4]),
                Color(regs[5] as u8),
            ),
            Syscall::Num => {
                self.fb
                    .draw_number(s(regs[1]), s(regs[2]), regs[3] as u32, Color(regs[4] as u8))
            }
        }
    }
}

impl Machine for Console {
    fn info(&self) -> MachineInfo {
        MachineInfo {
            // detlint: allow(hot_alloc) -- session-setup metadata, never on the frame path
            title: self.rom.title().to_string(),
            players: self.rom.players(),
            cfps: self.rom.cfps(),
        }
    }

    fn reset(&mut self) {
        let mode = self.cpu.interp_mode();
        self.cpu = Cpu::new(self.rom.entry(), self.rom.seed());
        self.cpu.set_interp_mode(mode);
        self.cpu.load_image(self.rom.image());
        self.fb = FrameBuffer::standard();
        self.fb.enable_dirty_tracking();
        self.audio = AudioChannel::new();
        self.frame = 0;
    }

    fn step_frame(&mut self, input: InputWord) {
        self.step_frame_mode(input, StepMode::Present);
    }

    fn step_frame_mode(&mut self, input: InputWord, mode: StepMode) {
        let headless = mode == StepMode::Headless;
        let mut bus = Bus {
            fb: &mut self.fb,
            audio: &mut self.audio,
            input,
            frame: self.frame,
            headless,
        };
        self.cpu.run_frame(self.cycles_per_frame, &mut bus);
        if headless {
            // Tone registers still tick (authoritative state); the sample
            // buffer and framebuffer are left stale — nobody will present
            // this frame. Pixels were not touched, so there is nothing to
            // reconcile either.
            self.audio.advance_frame(self.rom.cfps());
        } else {
            // The channel renders into its own reusable buffer;
            // `audio_samples` borrows it directly, so no per-frame copy
            // happens here.
            self.audio.render_frame(self.rom.cfps());
            // Fold this frame's net pixel changes into the fb dirty
            // accumulator. Done once per presented frame rather than per
            // draw call: a clear-and-redraw cycle that reproduces the
            // previous pixels contributes zero dirty pages.
            self.fb.reconcile_dirty();
        }
        self.frame += 1;
    }

    fn frame(&self) -> u64 {
        self.frame
    }

    fn framebuffer(&self) -> &FrameBuffer {
        &self.fb
    }

    fn audio_samples(&self) -> &[i16] {
        self.audio.last_frame()
    }

    fn state_hash(&self) -> u64 {
        // Digest of the *authoritative* core only — header, frame counter,
        // CPU (registers, flags, RNG, memory), audio registers. Framebuffer
        // pixels are deliberately excluded: games redraw every presented
        // frame from core state, and headless-stepped frames leave pixels
        // stale by design, so including them would make the hash depend on
        // presentation history rather than game state. Allocation-free,
        // unlike hashing a materialized snapshot.
        let mut h = StateHasher::new();
        h.write(STATE_MAGIC);
        h.write_u64(self.rom.content_hash());
        h.write_u64(self.frame);
        self.cpu.hash_state(&mut h);
        h.write(&self.audio.save());
        h.finish()
    }

    fn save_state(&self) -> Vec<u8> {
        // detlint: allow(hot_alloc) -- the allocating convenience variant; hot callers use save_state_into
        let mut out = Vec::with_capacity(self.state_len());
        self.save_state_into(&mut out);
        out
    }

    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&self.rom.content_hash().to_le_bytes());
        out.extend_from_slice(&self.frame.to_le_bytes());
        out.extend_from_slice(&self.cpu.serialize_small());
        out.resize(MEM_OFF, 0); // pad head to the page boundary
        out.extend_from_slice(self.cpu.mem_bytes());
        out.extend_from_slice(&self.audio.save());
        out.resize(FB_OFF, 0); // pad audio to the page boundary
        out.extend_from_slice(self.fb.pixels());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let expected = self.state_len();
        if bytes.len() < expected {
            return Err(StateError::Truncated {
                expected,
                actual: bytes.len(),
            });
        }
        if &bytes[..STATE_MAGIC.len()] != STATE_MAGIC {
            return Err(StateError::BadMagic);
        }
        // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
        let rom_hash = u64::from_le_bytes(bytes[5..13].try_into().expect("len 8"));
        if rom_hash != self.rom.content_hash() {
            return Err(StateError::WrongMachine);
        }
        // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
        self.frame = u64::from_le_bytes(bytes[13..21].try_into().expect("len 8"));
        self.cpu
            .deserialize_small(&bytes[21..HEAD_LEN])
            // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
            .expect("length checked above");
        self.cpu.restore_mem_full(&bytes[MEM_OFF..AUD_OFF]);
        let aud = &bytes[AUD_OFF..AUD_OFF + AUD_LEN];
        // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
        self.audio.load(aud.try_into().expect("len 14"));
        self.fb.load_pixels(&bytes[FB_OFF..expected]);
        // A full load re-baselines the machine against an arbitrary
        // snapshot: any reference buffer a dirty-capture caller holds is
        // now potentially stale everywhere, so saturate the accumulators.
        self.cpu.mark_all_dirty();
        self.audio.mark_dirty();
        self.fb.mark_all_dirty();
        Ok(())
    }

    /// Drains every component's dirty accumulator into `d`, expressed as
    /// byte ranges of the serialized image. The head is always marked:
    /// the frame counter, registers, and RNG mutate nearly every frame
    /// and cost only 62 bytes to rewrite.
    ///
    /// Calling this *consumes* the accumulators, so the caller must
    /// rewrite (or already hold) the marked ranges of its reference
    /// snapshot — otherwise a later incremental capture would silently
    /// skip them.
    fn collect_dirty_into(&mut self, d: &mut DirtyPages) {
        d.reset(self.state_len());
        d.mark_range(0, HEAD_LEN);
        // MEM_OFF and FB_OFF are page-aligned, so the CPU's and the
        // framebuffer's page bitmaps fold in with word-level ORs — no
        // per-page translation loop.
        d.or_word_bits(&self.cpu.take_dirty(), MEM_OFF / crate::dirty::PAGE_SIZE);
        if self.audio.take_dirty() {
            d.mark_range(AUD_OFF, AUD_LEN);
        }
        d.union_at(self.fb.dirty_pages(), FB_OFF);
        self.fb.clear_dirty();
    }

    fn save_state_ranges_into(&self, out: &mut Vec<u8>, dirty: &DirtyPages) {
        if out.len() != self.state_len() || dirty.len() != self.state_len() {
            self.save_state_into(out);
            return;
        }
        let head = self.head_bytes();
        let buf = out.as_mut_slice();
        for (s, e) in dirty.byte_ranges() {
            self.write_state_range(&head, buf, s, e);
        }
    }

    fn save_state_dirty_into(&mut self, out: &mut Vec<u8>, dirty: &mut DirtyPages) {
        self.collect_dirty_into(dirty);
        if out.len() != self.state_len() {
            // `out` holds no valid reference image to patch — capture in
            // full (and report the whole image dirty).
            dirty.mark_all();
            self.save_state_into(out);
            return;
        }
        self.save_state_ranges_into(out, dirty);
    }

    fn load_state_dirty(&mut self, bytes: &[u8], dirty: &DirtyPages) -> Result<(), StateError> {
        let expected = self.state_len();
        if bytes.len() < expected {
            return Err(StateError::Truncated {
                expected,
                actual: bytes.len(),
            });
        }
        if &bytes[..STATE_MAGIC.len()] != STATE_MAGIC {
            return Err(StateError::BadMagic);
        }
        // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
        let rom_hash = u64::from_le_bytes(bytes[5..13].try_into().expect("len 8"));
        if rom_hash != self.rom.content_hash() {
            return Err(StateError::WrongMachine);
        }
        if dirty.len() != expected {
            // The bitmap doesn't describe this image; restore everything.
            return self.load_state(bytes);
        }
        // The head is always restored: capture always marks it, and it
        // costs only 62 bytes to parse.
        // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
        self.frame = u64::from_le_bytes(bytes[13..21].try_into().expect("len 8"));
        self.cpu
            .deserialize_small(&bytes[21..HEAD_LEN])
            // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
            .expect("length checked above");
        // Every marked range is dispatched onto the overlapped regions.
        // Component restores re-mark their accumulators, because the
        // caller's reference snapshot may disagree with the restore
        // target even where the live machine happened to match it.
        let mut audio_done = false;
        for (s, e) in dirty.byte_ranges() {
            let e = e.min(expected);
            if s >= e {
                continue;
            }
            let (ms, me) = (s.max(MEM_OFF), e.min(AUD_OFF));
            if ms < me {
                self.cpu
                    .restore_mem_range(&bytes[MEM_OFF..AUD_OFF], ms - MEM_OFF, me - MEM_OFF);
            }
            if !audio_done && s < AUD_OFF + AUD_LEN && e > AUD_OFF {
                let aud = &bytes[AUD_OFF..AUD_OFF + AUD_LEN];
                // detlint: allow(panic_path) -- `expected` length checked on entry covers every window
                self.audio.load(aud.try_into().expect("len 14"));
                audio_done = true;
            }
            let (fs, fe) = (s.max(FB_OFF), e);
            if fs < fe {
                self.fb
                    .restore_pixel_range(&bytes[FB_OFF..expected], fs - FB_OFF, fe - FB_OFF);
            }
        }
        Ok(())
    }

    fn interp_stats(&self) -> Option<InterpStats> {
        Some(self.cpu.interp_stats())
    }
}

// The memory image dominates snapshot size; make that visible in docs.
const _: () = assert!(MEM_SIZE == 0x1_0000);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;
    use crate::input::{Button, Player};

    fn counter_rom() -> Rom {
        assemble(
            r#"
            .title "Counter"
            .seed 5
            loop:
                addi r0, 1
                rnd r5
                yield
                jmp loop
            "#,
        )
        .unwrap()
    }

    /// A game that draws a paddle whose y position follows P1 up/down.
    fn paddle_rom() -> Rom {
        assemble(
            r#"
            .title "Paddle"
            .equ YPOS, 0x8000
            init:
                ldi r0, 50
                ldi r1, YPOS
                stw [r1], r0
            loop:
                in r0, 0          ; P1 buttons in low byte
                ldi r1, 1         ; Up bit
                and r1, r0
                cmpi r1, 0
                jz check_down
                ldi r1, YPOS
                ldw r2, [r1]
                subi r2, 1
                stw [r1], r2
            check_down:
                ldi r1, 2         ; Down bit
                and r1, r0
                cmpi r1, 0
                jz draw
                ldi r1, YPOS
                ldw r2, [r1]
                addi r2, 1
                stw [r1], r2
            draw:
                ldi r1, 0
                sys 0             ; cls black
                ldi r1, 4         ; x
                ldi r3, YPOS
                ldw r2, [r3]      ; y
                ldi r3, 3         ; w
                ldi r4, 12        ; h
                ldi r5, 15        ; white
                sys 2             ; rect
                yield
                jmp loop
            "#,
        )
        .unwrap()
    }

    #[test]
    fn frames_advance_and_counter_runs() {
        let mut c = Console::new(counter_rom());
        for _ in 0..10 {
            c.step_frame(InputWord::NONE);
        }
        assert_eq!(c.frame(), 10);
        assert_eq!(c.cpu().reg(crate::isa::Reg(0)), 10);
    }

    #[test]
    fn replicas_converge_under_same_inputs() {
        let mut a = Console::new(paddle_rom());
        let mut b = Console::new(paddle_rom());
        let mut input = InputWord::NONE;
        input.press(Player::ONE, Button::Down);
        for _ in 0..30 {
            a.step_frame(input);
            b.step_frame(input);
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn replicas_diverge_under_different_inputs() {
        let mut a = Console::new(paddle_rom());
        let mut b = Console::new(paddle_rom());
        let mut up = InputWord::NONE;
        up.press(Player::ONE, Button::Up);
        for _ in 0..5 {
            a.step_frame(up);
            b.step_frame(InputWord::NONE);
        }
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn input_moves_the_paddle_on_screen() {
        let mut c = Console::new(paddle_rom());
        c.step_frame(InputWord::NONE);
        let before = c.framebuffer().clone();
        let mut down = InputWord::NONE;
        down.press(Player::ONE, Button::Down);
        for _ in 0..10 {
            c.step_frame(down);
        }
        assert_ne!(c.framebuffer(), &before, "paddle should have moved");
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut c = Console::new(counter_rom());
        let initial = c.state_hash();
        for _ in 0..7 {
            c.step_frame(InputWord::NONE);
        }
        c.reset();
        assert_eq!(c.state_hash(), initial);
        assert_eq!(c.frame(), 0);
    }

    #[test]
    fn headless_step_keeps_state_identical_and_final_present_catches_up() {
        let mut present = Console::new(paddle_rom());
        let mut headless = Console::new(paddle_rom());
        let mut down = InputWord::NONE;
        down.press(Player::ONE, Button::Down);
        for f in 0..30u64 {
            let input = if f % 3 == 0 { down } else { InputWord::NONE };
            present.step_frame(input);
            headless.step_frame_mode(input, StepMode::Headless);
            assert_eq!(present.state_hash(), headless.state_hash(), "frame {f}");
        }
        // One presented frame catches the display up completely: the game
        // redraws from core state, which never diverged.
        present.step_frame(InputWord::NONE);
        headless.step_frame_mode(InputWord::NONE, StepMode::Present);
        assert_eq!(present.framebuffer(), headless.framebuffer());
        assert_eq!(present.audio_samples(), headless.audio_samples());
        assert_eq!(present.state_hash(), headless.state_hash());
        assert_eq!(present.save_state(), headless.save_state());
    }

    #[test]
    fn headless_tone_advances_audio_registers() {
        let rom = assemble(
            r#"
                ldi r1, 440
                ldi r2, 3
                ldi r3, 1000
                sys 3
                yield
            loop:
                yield
                jmp loop
            "#,
        )
        .unwrap();
        let mut present = Console::new(rom.clone());
        let mut headless = Console::new(rom);
        for _ in 0..2 {
            present.step_frame(InputWord::NONE);
            headless.step_frame_mode(InputWord::NONE, StepMode::Headless);
        }
        // Tone fired inside headless frames; countdown and phase match.
        assert_eq!(present.state_hash(), headless.state_hash());
        // The third frame is still within the tone and renders identically.
        present.step_frame(InputWord::NONE);
        headless.step_frame(InputWord::NONE);
        assert!(headless.audio_samples().iter().any(|&s| s != 0));
        assert_eq!(present.audio_samples(), headless.audio_samples());
    }

    #[test]
    fn save_load_roundtrip_resumes_identically() {
        let mut a = Console::new(counter_rom());
        for i in 0..20u32 {
            a.step_frame(InputWord(i % 4));
        }
        let snap = a.save_state();

        let mut b = Console::new(counter_rom());
        b.load_state(&snap).unwrap();
        assert_eq!(a.state_hash(), b.state_hash());

        for i in 0..20u32 {
            a.step_frame(InputWord(i % 3));
            b.step_frame(InputWord(i % 3));
        }
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(b.frame(), 40);
    }

    #[test]
    fn load_state_rejects_wrong_rom() {
        let a = Console::new(counter_rom());
        let snap = a.save_state();
        let mut b = Console::new(paddle_rom());
        assert!(matches!(b.load_state(&snap), Err(StateError::WrongMachine)));
    }

    #[test]
    fn load_state_rejects_garbage() {
        let mut c = Console::new(counter_rom());
        assert!(matches!(
            c.load_state(&[0u8; 10]),
            Err(StateError::Truncated { .. })
        ));
        let mut snap = c.save_state();
        snap[0] = b'X';
        assert!(matches!(c.load_state(&snap), Err(StateError::BadMagic)));
    }

    #[test]
    fn dirty_capture_matches_full_capture_byte_for_byte() {
        let mut c = Console::new(paddle_rom());
        let mut cap = Vec::new();
        let mut d = DirtyPages::new(0);
        // First capture has no reference image: full path, saturated bitmap.
        c.save_state_dirty_into(&mut cap, &mut d);
        assert!(d.is_all());
        assert_eq!(cap, c.save_state());
        let mut down = InputWord::NONE;
        down.press(Player::ONE, Button::Down);
        for f in 0..40u64 {
            let input = if f % 3 == 0 { down } else { InputWord::NONE };
            c.step_frame(input);
            c.save_state_dirty_into(&mut cap, &mut d);
            assert!(!d.is_all(), "steady-state captures are incremental");
            assert_eq!(cap, c.save_state(), "frame {f}");
        }
    }

    #[test]
    fn dirty_restore_roundtrip_preserves_state_and_capture_coherence() {
        let mut c = Console::new(paddle_rom());
        let mut down = InputWord::NONE;
        down.press(Player::ONE, Button::Down);
        for _ in 0..10 {
            c.step_frame(down);
        }
        let mut cap = Vec::new();
        let mut d = DirtyPages::new(0);
        c.save_state_dirty_into(&mut cap, &mut d);
        let target_hash = c.state_hash();

        // Speculate ahead; the accumulated dirt then bounds diff(live, cap).
        for _ in 0..7 {
            c.step_frame(InputWord::NONE);
        }
        let dirt = c.take_dirty_pages();
        assert!(!dirt.is_all());
        c.load_state_dirty(&cap, &dirt).unwrap();
        assert_eq!(c.state_hash(), target_hash);
        assert_eq!(c.save_state(), cap);

        // The restore re-marked its ranges, so the next incremental
        // capture into the same buffer stays byte-exact.
        c.step_frame(down);
        c.save_state_dirty_into(&mut cap, &mut d);
        assert_eq!(cap, c.save_state());
    }

    #[test]
    fn info_reflects_rom() {
        let c = Console::new(counter_rom());
        let info = c.info();
        assert_eq!(info.title, "Counter");
        assert_eq!(info.cfps, 60);
    }

    #[test]
    fn audio_syscall_produces_samples() {
        let rom = assemble(
            r#"
                ldi r1, 440
                ldi r2, 10
                ldi r3, 1000
                sys 3
                yield
            loop:
                yield
                jmp loop
            "#,
        )
        .unwrap();
        let mut c = Console::new(rom);
        c.step_frame(InputWord::NONE);
        assert!(c.audio_samples().iter().any(|&s| s != 0));
    }

    #[test]
    fn frame_counter_port_readable() {
        let rom = assemble(
            r#"
            loop:
                in r0, 2
                yield
                jmp loop
            "#,
        )
        .unwrap();
        let mut c = Console::new(rom);
        c.step_frame(InputWord::NONE); // reads frame 0
        c.step_frame(InputWord::NONE); // reads frame 1
        assert_eq!(c.cpu().reg(crate::isa::Reg(0)), 1);
    }

    #[test]
    fn cycle_budget_bounds_runaway_programs() {
        let rom = assemble("loop:\n jmp loop").unwrap();
        let mut c = Console::new(rom).with_cycle_budget(100);
        c.step_frame(InputWord::NONE); // must terminate despite infinite loop
        assert_eq!(c.frame(), 1);
        assert!(!c.is_halted());
    }

    #[test]
    fn halted_program_keeps_framing() {
        let rom = assemble("halt").unwrap();
        let mut c = Console::new(rom);
        c.step_frame(InputWord::NONE);
        c.step_frame(InputWord::NONE);
        assert!(c.is_halted());
        assert_eq!(c.frame(), 2);
    }
}
