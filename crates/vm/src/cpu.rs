//! The 16-bit CPU core of the coplay console.
//!
//! A deterministic fetch–decode–execute interpreter over a 64 KiB address
//! space. Devices (video, audio, joypads) are reached through the
//! [`Devices`] trait so the CPU itself stays a pure function of
//! (state, program, inputs) — the property the whole reproduction rests on.
//!
//! Two interpreter loops share the same architectural semantics: the
//! original per-step decoder (kept as the reference implementation) and a
//! predecoded-dispatch fast path backed by [`crate::predecode::DecodeCache`],
//! selected via [`InterpMode`]. Every memory store invalidates the cache
//! window it overlaps, so self-modifying programs execute byte-for-byte
//! identically in both modes.

use crate::hash::StateHasher;
use crate::isa::{Instruction, Reg, Syscall, INSTR_SIZE};
use crate::predecode::{cond, DecodeCache, InterpMode, InterpStats, Op};

/// Size of the address space, in bytes.
pub const MEM_SIZE: usize = 0x1_0000;

/// Initial stack pointer (stack grows downward from the top of memory).
pub const STACK_TOP: u16 = 0xFFFE;

/// The CPU's window onto the rest of the board.
pub trait Devices {
    /// Reads an input port: 0 = players 1–2 buttons, 1 = players 3–4,
    /// 2 = frame counter low word, 3 = frame counter high word.
    fn input_port(&mut self, port: u8) -> u16;

    /// Executes a system call; `regs` exposes the full register file
    /// (arguments are in `r1`–`r5` by convention).
    fn syscall(&mut self, call: Syscall, regs: &[u16; 16]);
}

/// Why the CPU stopped executing before its cycle budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The frame's cycle budget was exhausted (forced frame end).
    BudgetExhausted,
    /// The program executed `yield`.
    Yielded,
    /// The program executed `halt`; the CPU stays halted until reset.
    Halted,
    /// The program faulted (illegal instruction); the CPU stays halted.
    Faulted,
}

/// The register file, program counter, flags, memory, and deterministic RNG.
#[derive(Clone)]
pub struct Cpu {
    regs: [u16; 16],
    pc: u16,
    sp: u16,
    flag_z: bool,
    flag_n: bool,
    flag_c: bool,
    lcg: u32,
    halted: bool,
    faulted: bool,
    mem: Box<[u8; MEM_SIZE]>,
    mode: InterpMode,
    cache: DecodeCache,
    /// One bit per 256-byte page of `mem`, set by every store path
    /// alongside the decode-cache invalidation. Consumed (and cleared)
    /// by [`Cpu::take_dirty`]; the snapshot layer uses it to capture and
    /// restore only pages that may differ from its reference copy.
    dirty: [u64; MEM_SIZE / 256 / 64],
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("0x{:04x}", self.pc))
            .field("sp", &format_args!("0x{:04x}", self.sp))
            .field("regs", &self.regs)
            .field("halted", &self.halted)
            .field("faulted", &self.faulted)
            .finish_non_exhaustive()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed memory, `pc = entry`, and RNG seeded with
    /// `seed`.
    pub fn new(entry: u16, seed: u32) -> Cpu {
        Cpu {
            regs: [0; 16],
            pc: entry,
            sp: STACK_TOP,
            flag_z: false,
            flag_n: false,
            flag_c: false,
            lcg: seed,
            halted: false,
            faulted: false,
            // detlint: allow(hot_alloc) -- one-time 64 KiB backing store at construction
            mem: vec![0u8; MEM_SIZE]
                .into_boxed_slice()
                .try_into()
                // detlint: allow(panic_path) -- boxed slice has exactly MEM_SIZE elements
                .expect("len"),
            mode: InterpMode::default(),
            cache: DecodeCache::new(),
            // A fresh CPU has no reference snapshot to be clean against.
            dirty: [!0u64; MEM_SIZE / 256 / 64],
        }
    }

    /// Which interpreter loop [`Cpu::run_frame`] uses.
    pub fn interp_mode(&self) -> InterpMode {
        self.mode
    }

    /// Switches interpreter loops. Safe at any point: the decode cache is
    /// kept coherent by store invalidation regardless of mode, and neither
    /// loop observes state the other doesn't.
    pub fn set_interp_mode(&mut self, mode: InterpMode) {
        self.mode = mode;
    }

    /// Cumulative decode-cache statistics (zeros while in
    /// [`InterpMode::Reference`], which never dispatches from the cache).
    pub fn interp_stats(&self) -> InterpStats {
        self.cache.stats()
    }

    /// Enables or disables superinstruction pair fusion in the decode
    /// cache (on by default). Flushes the cache on change so no stale
    /// fused slot survives; semantics are identical either way — this
    /// knob exists so benchmarks can isolate the fusion win.
    pub fn set_fusion_enabled(&mut self, enabled: bool) {
        self.cache.set_fusion(enabled);
    }

    /// Copies `image` into memory starting at address 0.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds [`MEM_SIZE`].
    pub fn load_image(&mut self, image: &[u8]) {
        assert!(image.len() <= MEM_SIZE, "image exceeds address space");
        self.mem[..image.len()].copy_from_slice(image);
        self.cache.flush();
        self.dirty = [!0u64; MEM_SIZE / 256 / 64];
    }

    /// Reads register `r`.
    pub fn reg(&self, r: Reg) -> u16 {
        self.regs[r.0 as usize]
    }

    /// Writes register `r` (for tests and debuggers).
    pub fn set_reg(&mut self, r: Reg, v: u16) {
        self.regs[r.0 as usize] = v;
    }

    /// The program counter.
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// `true` once the CPU has executed `halt` or faulted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// `true` if the halt was caused by an illegal instruction.
    pub fn is_faulted(&self) -> bool {
        self.faulted
    }

    /// Reads a byte of memory.
    pub fn read_byte(&self, addr: u16) -> u8 {
        self.mem[addr as usize]
    }

    /// Writes a byte of memory, re-colding any decode-cache slot whose
    /// fetch window covers the written byte.
    pub fn write_byte(&mut self, addr: u16, v: u8) {
        self.mem[addr as usize] = v;
        self.cache.invalidate(addr, 1);
        self.dirty[(addr >> 14) as usize] |= 1u64 << ((addr >> 8) & 63);
    }

    /// Reads a little-endian word; the high byte wraps around the address
    /// space.
    pub fn read_word(&self, addr: u16) -> u16 {
        let lo = self.mem[addr as usize] as u16;
        let hi = self.mem[addr.wrapping_add(1) as usize] as u16;
        lo | (hi << 8)
    }

    /// Writes a little-endian word with wrapping semantics, re-colding any
    /// decode-cache slot whose fetch window covers either written byte.
    pub fn write_word(&mut self, addr: u16, v: u16) {
        self.mem[addr as usize] = v as u8;
        let hi = addr.wrapping_add(1);
        self.mem[hi as usize] = (v >> 8) as u8;
        self.cache.invalidate(addr, 2);
        self.dirty[(addr >> 14) as usize] |= 1u64 << ((addr >> 8) & 63);
        self.dirty[(hi >> 14) as usize] |= 1u64 << ((hi >> 8) & 63);
    }

    /// Runs until `yield`/`halt`/fault or `budget` instructions, whichever
    /// comes first. Returns the stop reason and cycles consumed.
    pub fn run_frame<D: Devices>(&mut self, budget: u32, dev: &mut D) -> (Stop, u32) {
        if self.halted {
            return (Stop::Halted, 0);
        }
        match self.mode {
            InterpMode::Predecoded => self.run_frame_fast(budget, dev),
            InterpMode::Reference => self.run_frame_reference(budget, dev),
        }
    }

    /// The original per-step decode loop, kept as the reference
    /// implementation the fast path is differentially tested against.
    fn run_frame_reference<D: Devices>(&mut self, budget: u32, dev: &mut D) -> (Stop, u32) {
        let mut cycles = 0;
        while cycles < budget {
            cycles += 1;
            match self.step(dev) {
                Stop::BudgetExhausted => continue, // means "keep running"
                stop => return (stop, cycles),
            }
        }
        (Stop::BudgetExhausted, cycles)
    }

    /// Predecoded-dispatch loop: resolves each `pc` through the decode
    /// cache (filling cold slots once) and executes from pre-split
    /// operands. Fused superinstruction slots retire two instructions
    /// (and two cycles) from a single dispatch. Cycle accounting is
    /// batched — the dispatch counters are folded into the cache
    /// statistics once per frame, not per step.
    ///
    /// Semantics are bit-identical to [`Cpu::step`]; in particular an
    /// illegal slot faults *before* the pc advance, exactly like a decode
    /// failure on the reference path, and a fused slot met with only one
    /// cycle of budget left retires exactly one instruction via the
    /// reference stepper so budget-edge frames stay equivalent too.
    fn run_frame_fast<D: Devices>(&mut self, budget: u32, dev: &mut D) -> (Stop, u32) {
        let mut cycles: u32 = 0;
        let mut fused_pairs: u64 = 0;
        let stop = loop {
            if cycles >= budget {
                break Stop::BudgetExhausted;
            }

            let at = self.pc;
            let mut op = self.cache.op(at);
            if op == Op::Cold {
                op = self.cache.fill(at, &self.mem);
            }
            if op == Op::Illegal {
                cycles += 1;
                self.halted = true;
                self.faulted = true;
                break Stop::Faulted;
            }
            let fused = op.is_fused();
            if fused && budget - cycles < 2 {
                cycles += 1;
                match self.step(dev) {
                    Stop::BudgetExhausted => continue, // means "keep running"
                    stop => break stop,
                }
            }
            cycles += 1 + fused as u32;
            fused_pairs += fused as u64;
            let args = self.cache.args(at);
            self.pc = at.wrapping_add(if fused { 2 * INSTR_SIZE } else { INSTR_SIZE });
            // Decode guaranteed register indices < 16; the mask lets the
            // compiler drop the bounds checks.
            let a = args.a as usize & 15;
            let b = args.b as usize & 15;
            let c = args.c as usize & 15;
            let imm = args.imm;
            let imm2 = args.imm2;

            match op {
                // detlint: allow(panic_path) -- both ops take the cold/illegal early exit above
                Op::Cold | Op::Illegal => unreachable!("handled above"),
                Op::Nop => {}
                Op::Halt => {
                    self.halted = true;
                    break Stop::Halted;
                }
                Op::Yield => break Stop::Yielded,
                Op::Ldi => self.regs[a] = imm,
                Op::Mov => self.regs[a] = self.regs[b],
                Op::Add => self.regs[a] = self.regs[a].wrapping_add(self.regs[b]),
                Op::Sub => self.regs[a] = self.regs[a].wrapping_sub(self.regs[b]),
                Op::Mul => self.regs[a] = self.regs[a].wrapping_mul(self.regs[b]),
                Op::Div => self.regs[a] = self.regs[a].checked_div(self.regs[b]).unwrap_or(0xFFFF),
                Op::Modu => self.regs[a] = self.regs[a].checked_rem(self.regs[b]).unwrap_or(0),
                Op::And => self.regs[a] &= self.regs[b],
                Op::Or => self.regs[a] |= self.regs[b],
                Op::Xor => self.regs[a] ^= self.regs[b],
                Op::Shli => self.regs[a] <<= imm & 15,
                Op::Shri => self.regs[a] >>= imm & 15,
                Op::Addi => self.regs[a] = self.regs[a].wrapping_add(imm),
                Op::Subi => self.regs[a] = self.regs[a].wrapping_sub(imm),
                Op::Neg => self.regs[a] = (self.regs[a] as i16).wrapping_neg() as u16,
                Op::Cmp => self.set_flags(self.regs[a], self.regs[b]),
                Op::Cmpi => self.set_flags(self.regs[a], imm),
                Op::Jmp => self.pc = imm,
                Op::Jz => {
                    if self.flag_z {
                        self.pc = imm;
                    }
                }
                Op::Jnz => {
                    if !self.flag_z {
                        self.pc = imm;
                    }
                }
                Op::Jlt => {
                    if self.flag_n {
                        self.pc = imm;
                    }
                }
                Op::Jge => {
                    if !self.flag_n {
                        self.pc = imm;
                    }
                }
                Op::Call => {
                    self.push(self.pc);
                    self.pc = imm;
                }
                Op::Ret => self.pc = self.pop(),
                Op::Ldw => {
                    let addr = self.regs[b].wrapping_add(imm);
                    self.regs[a] = self.read_word(addr);
                }
                Op::Stw => {
                    let addr = self.regs[a].wrapping_add(imm);
                    self.write_word(addr, self.regs[b]);
                }
                Op::Ldb => {
                    let addr = self.regs[b].wrapping_add(imm);
                    self.regs[a] = self.read_byte(addr) as u16;
                }
                Op::Stb => {
                    let addr = self.regs[a].wrapping_add(imm);
                    self.write_byte(addr, self.regs[b] as u8);
                }
                Op::Push => self.push(self.regs[a]),
                Op::Pop => {
                    let v = self.pop();
                    self.regs[a] = v;
                }
                Op::In => self.regs[a] = dev.input_port(args.b),
                Op::Rnd => {
                    self.lcg = self.lcg.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    self.regs[a] = (self.lcg >> 16) as u16;
                }
                Op::Sys => {
                    // detlint: allow(panic_path) -- predecode only caches Op::Sys for valid syscall ids
                    let call = Syscall::from_u8(args.a).expect("cached syscall is valid");
                    dev.syscall(call, &self.regs);
                }
                // Fused superinstructions: both constituents execute in
                // their original order from hoisted operands, so every
                // architectural effect (flags, memory, device calls)
                // lands exactly as two reference steps would.
                Op::LdiLdi => {
                    self.regs[a] = imm;
                    self.regs[c] = imm2;
                }
                Op::LdiLdw => {
                    self.regs[a] = imm;
                    let addr = self.regs[c].wrapping_add(imm2);
                    self.regs[b] = self.read_word(addr);
                }
                Op::LdwLdi => {
                    let addr = self.regs[b].wrapping_add(imm);
                    self.regs[a] = self.read_word(addr);
                    self.regs[c] = imm2;
                }
                Op::LdiSys => {
                    self.regs[a] = imm;
                    // detlint: allow(panic_path) -- predecode only fuses valid syscall ids
                    let call = Syscall::from_u8(args.c).expect("cached syscall is valid");
                    dev.syscall(call, &self.regs);
                }
                Op::SysLdi => {
                    // detlint: allow(panic_path) -- predecode only fuses valid syscall ids
                    let call = Syscall::from_u8(args.a).expect("cached syscall is valid");
                    dev.syscall(call, &self.regs);
                    self.regs[c] = imm2;
                }
                Op::AndCmpi => {
                    self.regs[a] &= self.regs[b];
                    self.set_flags(self.regs[c], imm2);
                }
                Op::CmpiJcc => {
                    self.set_flags(self.regs[a], imm);
                    let take = match args.c {
                        cond::JZ => self.flag_z,
                        cond::JNZ => !self.flag_z,
                        cond::JLT => self.flag_n,
                        _ => !self.flag_n, // cond::JGE
                    };
                    if take {
                        self.pc = imm2;
                    }
                }
                Op::LdiAnd => {
                    self.regs[a] = imm;
                    self.regs[b] &= self.regs[c];
                }
                Op::MovLdi => {
                    self.regs[a] = self.regs[b];
                    self.regs[c] = imm2;
                }
                Op::LdwCmpi => {
                    let addr = self.regs[b].wrapping_add(imm);
                    self.regs[a] = self.read_word(addr);
                    self.set_flags(self.regs[c], imm2);
                }
                Op::LdiStw => {
                    self.regs[a] = imm;
                    let addr = self.regs[b].wrapping_add(imm2);
                    self.write_word(addr, self.regs[c]);
                }
            }
        };
        self.cache.note_dispatches(cycles as u64);
        self.cache.note_fused(fused_pairs);
        (stop, cycles)
    }

    /// Executes one instruction. Returns [`Stop::BudgetExhausted`] as the
    /// "keep running" sentinel (the caller owns the budget).
    fn step<D: Devices>(&mut self, dev: &mut D) -> Stop {
        let bytes = [
            self.mem[self.pc as usize],
            self.mem[self.pc.wrapping_add(1) as usize],
            self.mem[self.pc.wrapping_add(2) as usize],
            self.mem[self.pc.wrapping_add(3) as usize],
        ];
        let Some(instr) = Instruction::decode(bytes) else {
            self.halted = true;
            self.faulted = true;
            return Stop::Faulted;
        };
        self.pc = self.pc.wrapping_add(INSTR_SIZE);

        use Instruction::*;
        match instr {
            Nop => {}
            Halt => {
                self.halted = true;
                return Stop::Halted;
            }
            Yield => return Stop::Yielded,
            Ldi(d, imm) => self.regs[d.0 as usize] = imm,
            Mov(d, s) => self.regs[d.0 as usize] = self.regs[s.0 as usize],
            Add(d, s) => {
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].wrapping_add(self.regs[s.0 as usize])
            }
            Sub(d, s) => {
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].wrapping_sub(self.regs[s.0 as usize])
            }
            Mul(d, s) => {
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].wrapping_mul(self.regs[s.0 as usize])
            }
            Div(d, s) => {
                let den = self.regs[s.0 as usize];
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].checked_div(den).unwrap_or(0xFFFF);
            }
            Modu(d, s) => {
                let den = self.regs[s.0 as usize];
                self.regs[d.0 as usize] = self.regs[d.0 as usize].checked_rem(den).unwrap_or(0);
            }
            And(d, s) => self.regs[d.0 as usize] &= self.regs[s.0 as usize],
            Or(d, s) => self.regs[d.0 as usize] |= self.regs[s.0 as usize],
            Xor(d, s) => self.regs[d.0 as usize] ^= self.regs[s.0 as usize],
            Shli(d, imm) => self.regs[d.0 as usize] <<= imm & 15,
            Shri(d, imm) => self.regs[d.0 as usize] >>= imm & 15,
            Addi(d, imm) => self.regs[d.0 as usize] = self.regs[d.0 as usize].wrapping_add(imm),
            Subi(d, imm) => self.regs[d.0 as usize] = self.regs[d.0 as usize].wrapping_sub(imm),
            Neg(d) => {
                self.regs[d.0 as usize] = (self.regs[d.0 as usize] as i16).wrapping_neg() as u16
            }
            Cmp(d, s) => self.set_flags(self.regs[d.0 as usize], self.regs[s.0 as usize]),
            Cmpi(d, imm) => self.set_flags(self.regs[d.0 as usize], imm),
            Jmp(a) => self.pc = a,
            Jz(a) => {
                if self.flag_z {
                    self.pc = a;
                }
            }
            Jnz(a) => {
                if !self.flag_z {
                    self.pc = a;
                }
            }
            Jlt(a) => {
                if self.flag_n {
                    self.pc = a;
                }
            }
            Jge(a) => {
                if !self.flag_n {
                    self.pc = a;
                }
            }
            Call(a) => {
                self.push(self.pc);
                self.pc = a;
            }
            Ret => self.pc = self.pop(),
            Ldw(d, s, off) => {
                let addr = self.regs[s.0 as usize].wrapping_add(off as u16);
                self.regs[d.0 as usize] = self.read_word(addr);
            }
            Stw(d, s, off) => {
                let addr = self.regs[d.0 as usize].wrapping_add(off as u16);
                self.write_word(addr, self.regs[s.0 as usize]);
            }
            Ldb(d, s, off) => {
                let addr = self.regs[s.0 as usize].wrapping_add(off as u16);
                self.regs[d.0 as usize] = self.read_byte(addr) as u16;
            }
            Stb(d, s, off) => {
                let addr = self.regs[d.0 as usize].wrapping_add(off as u16);
                self.write_byte(addr, self.regs[s.0 as usize] as u8);
            }
            Push(s) => self.push(self.regs[s.0 as usize]),
            Pop(d) => {
                let v = self.pop();
                self.regs[d.0 as usize] = v;
            }
            In(d, port) => self.regs[d.0 as usize] = dev.input_port(port),
            Rnd(d) => {
                self.lcg = self.lcg.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                self.regs[d.0 as usize] = (self.lcg >> 16) as u16;
            }
            Sys(call) => dev.syscall(call, &self.regs),
        }
        Stop::BudgetExhausted
    }

    fn set_flags(&mut self, a: u16, b: u16) {
        self.flag_z = a == b;
        self.flag_n = (a as i16) < (b as i16);
        self.flag_c = a < b;
    }

    fn push(&mut self, v: u16) {
        self.sp = self.sp.wrapping_sub(2);
        self.write_word(self.sp, v);
    }

    fn pop(&mut self) -> u16 {
        let v = self.read_word(self.sp);
        self.sp = self.sp.wrapping_add(2);
        v
    }

    /// Serializes the complete CPU state (registers, flags, RNG, memory).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.serialize_small());
        out.extend_from_slice(&self.mem[..]);
    }

    /// Number of bytes [`Cpu::serialize`] writes.
    pub const SERIALIZED_LEN: usize = Self::SMALL_LEN + MEM_SIZE;

    /// Length of the non-memory head of the serialized format (registers,
    /// pc, sp, flags, RNG).
    pub(crate) const SMALL_LEN: usize = 32 + 2 + 2 + 1 + 4;

    /// Serializes just the non-memory head of the state — the first
    /// [`Cpu::SMALL_LEN`] bytes [`Cpu::serialize`] would write.
    pub(crate) fn serialize_small(&self) -> [u8; Self::SMALL_LEN] {
        let mut out = [0u8; Self::SMALL_LEN];
        let mut pos = 0;
        for r in self.regs {
            out[pos..pos + 2].copy_from_slice(&r.to_le_bytes());
            pos += 2;
        }
        out[pos..pos + 2].copy_from_slice(&self.pc.to_le_bytes());
        out[pos + 2..pos + 4].copy_from_slice(&self.sp.to_le_bytes());
        out[pos + 4] = (self.flag_z as u8)
            | (self.flag_n as u8) << 1
            | (self.flag_c as u8) << 2
            | (self.halted as u8) << 3
            | (self.faulted as u8) << 4;
        out[pos + 5..pos + 9].copy_from_slice(&self.lcg.to_le_bytes());
        out
    }

    /// The raw memory image, in serialized-format order (identical bytes
    /// to the memory region [`Cpu::serialize`] writes).
    pub(crate) fn mem_bytes(&self) -> &[u8] {
        &self.mem[..]
    }

    /// Takes (returns and clears) the accumulated per-page dirty bitmap
    /// for memory. Bit `p` of the flattened bitmap covers bytes
    /// `p * 256 .. (p + 1) * 256`.
    pub(crate) fn take_dirty(&mut self) -> [u64; MEM_SIZE / 256 / 64] {
        std::mem::replace(&mut self.dirty, [0u64; MEM_SIZE / 256 / 64])
    }

    /// Saturates the dirty bitmap (every page of memory considered
    /// changed since the last capture).
    pub(crate) fn mark_all_dirty(&mut self) {
        self.dirty = [!0u64; MEM_SIZE / 256 / 64];
    }

    /// Marks every dirty-bitmap page overlapping `[start, end)` of
    /// memory.
    fn mark_mem_range(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        for page in (start >> 8)..=((end - 1).min(MEM_SIZE - 1) >> 8) {
            self.dirty[page >> 6] |= 1u64 << (page & 63);
        }
    }

    /// Feeds exactly the byte stream [`Cpu::serialize`] would produce into
    /// `h`, without allocating — lets callers compose state digests that
    /// cover the CPU without materializing a snapshot.
    pub fn hash_state(&self, h: &mut StateHasher) {
        for r in self.regs {
            h.write_u16(r);
        }
        h.write_u16(self.pc);
        h.write_u16(self.sp);
        h.write(&[(self.flag_z as u8)
            | (self.flag_n as u8) << 1
            | (self.flag_c as u8) << 2
            | (self.halted as u8) << 3
            | (self.faulted as u8) << 4]);
        h.write(&self.lcg.to_le_bytes());
        h.write(&self.mem[..]);
    }

    /// Restores state written by [`Cpu::serialize`].
    ///
    /// Returns `None` if `bytes` is too short.
    pub fn deserialize(&mut self, bytes: &[u8]) -> Option<()> {
        if bytes.len() < Self::SERIALIZED_LEN {
            return None;
        }
        self.deserialize_small(bytes)?;
        self.restore_mem_full(&bytes[Self::SMALL_LEN..Self::SMALL_LEN + MEM_SIZE]);
        Some(())
    }

    /// Restores the full memory image from `src` (at least [`MEM_SIZE`]
    /// bytes, serialized-format order).
    ///
    /// Diff-based: a rollback reload typically differs
    /// from current memory in a handful of bytes, so copy + invalidate
    /// only blocks that differ. Unchanged blocks keep their warm decode
    /// cache slots, which is what keeps repeated restores on the repair
    /// path cheap. The diff is two-level — 4 KiB super-blocks compared
    /// with one wide memcmp each, and only a differing super-block is
    /// re-scanned at 64-byte granularity — because a flat 64-byte scan
    /// costs a thousand tiny comparisons on the all-equal fast path
    /// that dominates real restores. The invalidation window reaches
    /// 2*INSTR_SIZE-1 bytes behind each changed block, so a fused slot
    /// starting in the tail of an unchanged block whose second word
    /// lies in the changed one is re-colded too — no whole-table flush
    /// is ever needed. Either way memory ends up byte-identical to the
    /// snapshot.
    pub(crate) fn restore_mem_full(&mut self, src: &[u8]) {
        const SUPER: usize = 4096;
        const BLOCK: usize = 64;
        let src = &src[..MEM_SIZE];
        for (s, sup) in src.chunks_exact(SUPER).enumerate() {
            let s_at = s * SUPER;
            if self.mem[s_at..s_at + SUPER] == *sup {
                continue;
            }
            for (i, block) in sup.chunks_exact(BLOCK).enumerate() {
                let at = s_at + i * BLOCK;
                if self.mem[at..at + BLOCK] != *block {
                    self.mem[at..at + BLOCK].copy_from_slice(block);
                    self.cache.invalidate(at as u16, BLOCK as u16);
                    self.dirty[at >> 14] |= 1u64 << ((at >> 8) & 63);
                }
            }
        }
    }

    /// Restores just the non-memory head of the state from the first
    /// [`Cpu::SMALL_LEN`] bytes of `bytes` (the format
    /// [`Cpu::serialize_small`] writes). Returns `None` if `bytes` is too
    /// short.
    pub(crate) fn deserialize_small(&mut self, bytes: &[u8]) -> Option<()> {
        if bytes.len() < Self::SMALL_LEN {
            return None;
        }
        let mut pos = 0;
        for r in &mut self.regs {
            // detlint: allow(panic_path) -- SMALL_LEN checked on entry covers every window
            *r = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("len 2"));
            pos += 2;
        }
        // detlint: allow(panic_path) -- SMALL_LEN checked on entry covers every window
        self.pc = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("len 2"));
        pos += 2;
        // detlint: allow(panic_path) -- SMALL_LEN checked on entry covers every window
        self.sp = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("len 2"));
        pos += 2;
        let f = bytes[pos];
        pos += 1;
        self.flag_z = f & 1 != 0;
        self.flag_n = f & 2 != 0;
        self.flag_c = f & 4 != 0;
        self.halted = f & 8 != 0;
        self.faulted = f & 16 != 0;
        // detlint: allow(panic_path) -- SMALL_LEN checked on entry covers every window
        self.lcg = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4"));
        Some(())
    }

    /// Restores memory bytes `[start, end)` from `src` (a full
    /// memory-image slice, serialized-format order), extending the window
    /// to 64-byte block boundaries. Only blocks that actually differ are
    /// copied and decode-cache invalidated — equal blocks keep their warm
    /// slots — but the *whole* window is re-marked dirty: the caller's
    /// reference snapshot may hold different bytes there even where the
    /// live machine and the restore target agree.
    pub(crate) fn restore_mem_range(&mut self, src: &[u8], start: usize, end: usize) {
        const BLOCK: usize = 64;
        let limit = src.len().min(MEM_SIZE);
        let start = (start / BLOCK) * BLOCK;
        let end = end.div_ceil(BLOCK).saturating_mul(BLOCK).min(limit);
        if start >= end {
            return;
        }
        let mut at = start;
        while at < end {
            let stop = (at + BLOCK).min(end);
            if self.mem[at..stop] != src[at..stop] {
                self.mem[at..stop].copy_from_slice(&src[at..stop]);
                self.cache.invalidate(at as u16, (stop - at) as u16);
            }
            at = stop;
        }
        self.mark_mem_range(start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction as I;

    /// Test devices: records syscalls, serves canned inputs.
    #[derive(Default)]
    struct TestDev {
        inputs: [u16; 4],
        calls: Vec<(Syscall, [u16; 16])>,
    }

    impl Devices for TestDev {
        fn input_port(&mut self, port: u8) -> u16 {
            self.inputs.get(port as usize).copied().unwrap_or(0)
        }
        fn syscall(&mut self, call: Syscall, regs: &[u16; 16]) {
            self.calls.push((call, *regs));
        }
    }

    fn assemble(instrs: &[I]) -> Vec<u8> {
        instrs.iter().flat_map(|i| i.encode()).collect()
    }

    fn run(instrs: &[I]) -> (Cpu, TestDev, Stop) {
        let mut cpu = Cpu::new(0, 42);
        cpu.load_image(&assemble(instrs));
        let mut dev = TestDev::default();
        let (stop, _) = cpu.run_frame(10_000, &mut dev);
        (cpu, dev, stop)
    }

    #[test]
    fn arithmetic_basics() {
        let (cpu, _, stop) = run(&[
            I::Ldi(Reg(0), 7),
            I::Ldi(Reg(1), 5),
            I::Add(Reg(0), Reg(1)), // 12
            I::Subi(Reg(0), 2),     // 10
            I::Mul(Reg(0), Reg(1)), // 50
            I::Halt,
        ]);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(cpu.reg(Reg(0)), 50);
    }

    #[test]
    fn wrapping_arithmetic() {
        let (cpu, _, _) = run(&[I::Ldi(Reg(0), 0xFFFF), I::Addi(Reg(0), 2), I::Halt]);
        assert_eq!(cpu.reg(Reg(0)), 1);
    }

    #[test]
    fn division_by_zero_is_deterministic() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 100),
            I::Ldi(Reg(1), 0),
            I::Div(Reg(0), Reg(1)),
            I::Ldi(Reg(2), 100),
            I::Modu(Reg(2), Reg(1)),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(0)), 0xFFFF);
        assert_eq!(cpu.reg(Reg(2)), 0);
    }

    #[test]
    fn logic_and_shifts() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 0b1100),
            I::Ldi(Reg(1), 0b1010),
            I::And(Reg(0), Reg(1)), // 0b1000
            I::Shli(Reg(0), 2),     // 0b100000
            I::Shri(Reg(0), 1),     // 0b10000
            I::Ldi(Reg(2), 0b1010),
            I::Or(Reg(2), Reg(1)),  // 0b1010
            I::Xor(Reg(2), Reg(1)), // 0
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(0)), 0b10000);
        assert_eq!(cpu.reg(Reg(2)), 0);
    }

    #[test]
    fn neg_is_twos_complement() {
        let (cpu, _, _) = run(&[I::Ldi(Reg(0), 5), I::Neg(Reg(0)), I::Halt]);
        assert_eq!(cpu.reg(Reg(0)) as i16, -5);
    }

    #[test]
    fn conditional_jumps_signed() {
        // r0 = -3 (0xFFFD), r1 = 2; JLT must take the signed view.
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 0xFFFD),
            I::Ldi(Reg(1), 2),
            I::Cmp(Reg(0), Reg(1)),
            I::Jlt(5 * 4),      // skip the next instruction
            I::Ldi(Reg(2), 99), // must be skipped
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(2)), 0);
    }

    #[test]
    fn jz_jnz() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 5),
            I::Cmpi(Reg(0), 5),
            I::Jz(4 * 4),
            I::Halt, // skipped
            I::Ldi(Reg(1), 1),
            I::Cmpi(Reg(0), 6),
            I::Jnz(8 * 4),
            I::Halt, // skipped
            I::Ldi(Reg(2), 2),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(1)), 1);
        assert_eq!(cpu.reg(Reg(2)), 2);
    }

    #[test]
    fn call_ret_uses_stack() {
        let (cpu, _, _) = run(&[
            I::Call(3 * 4),
            I::Ldi(Reg(1), 7), // executed after ret
            I::Halt,
            I::Ldi(Reg(0), 42), // subroutine
            I::Ret,
        ]);
        assert_eq!(cpu.reg(Reg(0)), 42);
        assert_eq!(cpu.reg(Reg(1)), 7);
    }

    #[test]
    fn push_pop() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 11),
            I::Ldi(Reg(1), 22),
            I::Push(Reg(0)),
            I::Push(Reg(1)),
            I::Pop(Reg(2)),
            I::Pop(Reg(3)),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(2)), 22);
        assert_eq!(cpu.reg(Reg(3)), 11);
    }

    #[test]
    fn memory_word_and_byte_access() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 0x8000),
            I::Ldi(Reg(1), 0xABCD),
            I::Stw(Reg(0), Reg(1), 0),
            I::Ldw(Reg(2), Reg(0), 0),
            I::Ldb(Reg(3), Reg(0), 0), // low byte
            I::Ldb(Reg(4), Reg(0), 1), // high byte
            I::Ldi(Reg(5), 0x42),
            I::Stb(Reg(0), Reg(5), 2),
            I::Ldb(Reg(6), Reg(0), 2),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(2)), 0xABCD);
        assert_eq!(cpu.reg(Reg(3)), 0xCD);
        assert_eq!(cpu.reg(Reg(4)), 0xAB);
        assert_eq!(cpu.reg(Reg(6)), 0x42);
    }

    #[test]
    fn input_ports_via_devices() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&assemble(&[I::In(Reg(0), 0), I::In(Reg(1), 1), I::Halt]));
        let mut dev = TestDev {
            inputs: [0x1234, 0x5678, 0, 0],
            calls: vec![],
        };
        cpu.run_frame(100, &mut dev);
        assert_eq!(cpu.reg(Reg(0)), 0x1234);
        assert_eq!(cpu.reg(Reg(1)), 0x5678);
    }

    #[test]
    fn syscall_reaches_devices_with_registers() {
        let (_, dev, _) = run(&[
            I::Ldi(Reg(1), 10),
            I::Ldi(Reg(2), 20),
            I::Sys(Syscall::Pix),
            I::Halt,
        ]);
        assert_eq!(dev.calls.len(), 1);
        let (call, regs) = &dev.calls[0];
        assert_eq!(*call, Syscall::Pix);
        assert_eq!(regs[1], 10);
        assert_eq!(regs[2], 20);
    }

    #[test]
    fn rnd_is_deterministic_per_seed() {
        let prog = assemble(&[I::Rnd(Reg(0)), I::Rnd(Reg(1)), I::Halt]);
        let mut a = Cpu::new(0, 7);
        a.load_image(&prog);
        let mut b = Cpu::new(0, 7);
        b.load_image(&prog);
        let mut c = Cpu::new(0, 8);
        c.load_image(&prog);
        let mut dev = TestDev::default();
        a.run_frame(100, &mut dev);
        b.run_frame(100, &mut dev);
        c.run_frame(100, &mut dev);
        assert_eq!(a.reg(Reg(0)), b.reg(Reg(0)));
        assert_eq!(a.reg(Reg(1)), b.reg(Reg(1)));
        assert_ne!(
            (a.reg(Reg(0)), a.reg(Reg(1))),
            (c.reg(Reg(0)), c.reg(Reg(1)))
        );
    }

    #[test]
    fn yield_stops_frame_but_not_machine() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&assemble(&[I::Addi(Reg(0), 1), I::Yield, I::Jmp(0)]));
        let mut dev = TestDev::default();
        let (stop, _) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Yielded);
        assert!(!cpu.is_halted());
        let (stop, _) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Yielded);
        assert_eq!(cpu.reg(Reg(0)), 2);
    }

    #[test]
    fn budget_exhaustion_ends_frame() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&assemble(&[I::Addi(Reg(0), 1), I::Jmp(0)]));
        let mut dev = TestDev::default();
        let (stop, cycles) = cpu.run_frame(50, &mut dev);
        assert_eq!(stop, Stop::BudgetExhausted);
        assert_eq!(cycles, 50);
    }

    #[test]
    fn illegal_instruction_faults_permanently() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&[0xFF, 0, 0, 0]);
        let mut dev = TestDev::default();
        let (stop, _) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Faulted);
        assert!(cpu.is_halted());
        assert!(cpu.is_faulted());
        let (stop, cycles) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(cycles, 0);
    }

    #[test]
    fn serialize_roundtrip_preserves_execution() {
        let prog = assemble(&[I::Rnd(Reg(0)), I::Addi(Reg(1), 3), I::Yield, I::Jmp(0)]);
        let mut a = Cpu::new(0, 99);
        a.load_image(&prog);
        let mut dev = TestDev::default();
        for _ in 0..5 {
            a.run_frame(100, &mut dev);
        }
        let mut bytes = Vec::new();
        a.serialize(&mut bytes);
        assert_eq!(bytes.len(), Cpu::SERIALIZED_LEN);

        let mut b = Cpu::new(0, 0);
        b.deserialize(&bytes).unwrap();
        for _ in 0..5 {
            a.run_frame(100, &mut dev);
            b.run_frame(100, &mut dev);
        }
        assert_eq!(a.reg(Reg(0)), b.reg(Reg(0)));
        assert_eq!(a.reg(Reg(1)), b.reg(Reg(1)));
    }

    #[test]
    fn deserialize_rejects_short_input() {
        let mut cpu = Cpu::new(0, 0);
        assert!(cpu.deserialize(&[0; 10]).is_none());
    }

    /// Runs the same program in both interpreter modes and asserts the
    /// serialized machine state matches after every frame.
    fn assert_modes_equivalent(image: &[u8], frames: usize, budget: u32) {
        let mut fast = Cpu::new(0, 42);
        fast.load_image(image);
        let mut slow = Cpu::new(0, 42);
        slow.load_image(image);
        slow.set_interp_mode(InterpMode::Reference);
        let mut dev_f = TestDev::default();
        let mut dev_s = TestDev::default();
        for frame in 0..frames {
            let rf = fast.run_frame(budget, &mut dev_f);
            let rs = slow.run_frame(budget, &mut dev_s);
            assert_eq!(rf, rs, "stop/cycles diverged at frame {frame}");
            let mut bf = Vec::new();
            let mut bs = Vec::new();
            fast.serialize(&mut bf);
            slow.serialize(&mut bs);
            assert_eq!(bf, bs, "state diverged at frame {frame}");
        }
    }

    #[test]
    fn fast_path_matches_reference_on_straightline_code() {
        let image = assemble(&[
            I::Ldi(Reg(0), 7),
            I::Rnd(Reg(1)),
            I::Push(Reg(0)),
            I::Pop(Reg(2)),
            I::Cmpi(Reg(2), 7),
            I::Jz(7 * 4),
            I::Halt,
            I::Addi(Reg(3), 1),
            I::Yield,
            I::Jmp(4),
        ]);
        assert_modes_equivalent(&image, 10, 1_000);
    }

    #[test]
    fn fast_path_matches_reference_on_fault() {
        // A few legal instructions, then garbage: both modes must fault at
        // the same pc without advancing past it.
        let mut image = assemble(&[I::Addi(Reg(0), 1), I::Addi(Reg(0), 1)]);
        image.extend_from_slice(&[0xFF, 0, 0, 0]);
        assert_modes_equivalent(&image, 3, 1_000);
    }

    #[test]
    fn fast_path_matches_reference_under_self_modification() {
        // Stores r4 into the immediate low byte of the `ldi r1` at 0x10
        // (its imm bytes live at 0x12..0x14; little-endian low byte at
        // 0x12), so the warm slot at 0x10 must be re-decoded every pass.
        let image = assemble(&[
            I::Addi(Reg(4), 1),        // 0x00
            I::Ldi(Reg(3), 0x12),      // 0x04
            I::Stb(Reg(3), Reg(4), 0), // 0x08
            I::Nop,                    // 0x0C
            I::Ldi(Reg(1), 0xAA00),    // 0x10 — patched each pass
            I::Yield,                  // 0x14
            I::Jmp(0),                 // 0x18
        ]);
        assert_modes_equivalent(&image, 20, 1_000);

        // And the patch is actually observed: after N frames the fast
        // path's r1 reflects the most recent store, not the cached decode.
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&image);
        let mut dev = TestDev::default();
        for _ in 0..5 {
            cpu.run_frame(1_000, &mut dev);
        }
        assert_eq!(cpu.reg(Reg(1)), 0xAA05);
        let stats = cpu.interp_stats();
        assert!(stats.invalidations >= 5, "stores must invalidate");
        assert!(stats.misses > stats.flushes, "patched slot re-decodes");
    }

    #[test]
    fn budget_exhaustion_matches_across_modes() {
        let image = assemble(&[I::Addi(Reg(0), 1), I::Jmp(0)]);
        assert_modes_equivalent(&image, 4, 50);
    }

    #[test]
    fn fused_pairs_match_reference_and_are_counted() {
        let image = assemble(&[
            I::Ldi(Reg(0), 3), // fuses with the next ldi
            I::Ldi(Reg(1), 4),
            I::Mov(Reg(2), Reg(0)), // fuses with the next ldi
            I::Ldi(Reg(3), 9),
            I::Cmpi(Reg(3), 9), // fuses with the jz
            I::Jz(7 * 4),
            I::Halt, // skipped by the taken branch
            I::Yield,
            I::Jmp(0),
        ]);
        assert_modes_equivalent(&image, 6, 1_000);

        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&image);
        let mut dev = TestDev::default();
        for _ in 0..4 {
            cpu.run_frame(1_000, &mut dev);
        }
        let s = cpu.interp_stats();
        // Three fused pairs per frame over four frames.
        assert_eq!(s.fused_hits, 12, "{s:?}");
        assert!(s.fusion_rate_milli() >= 500, "{s:?}");
    }

    #[test]
    fn fused_pair_at_budget_edge_matches_reference() {
        // With an odd budget the loop meets the fused ldi+ldi slot with
        // one cycle left and must retire exactly one instruction, like
        // the reference stepper would.
        let image = assemble(&[
            I::Ldi(Reg(0), 1),
            I::Ldi(Reg(1), 2),
            I::Addi(Reg(2), 1),
            I::Jmp(0),
        ]);
        for budget in 1..=9 {
            assert_modes_equivalent(&image, 3, budget);
        }
    }

    #[test]
    fn fast_path_matches_reference_when_store_patches_a_fused_tail() {
        // The ldi pair at 0x10/0x14 fuses; each pass stores r4 into the
        // *tail* ldi's immediate low byte (0x16), six bytes past the
        // fused slot's start — only the widened invalidation window
        // re-colds it, so this pins the straddle case.
        let image = assemble(&[
            I::Addi(Reg(4), 1),        // 0x00
            I::Ldi(Reg(3), 0x16),      // 0x04
            I::Stb(Reg(3), Reg(4), 0), // 0x08
            I::Nop,                    // 0x0C
            I::Ldi(Reg(1), 0x1100),    // 0x10 — fused head
            I::Ldi(Reg(2), 0xAA00),    // 0x14 — fused tail, patched
            I::Yield,                  // 0x18
            I::Jmp(0),                 // 0x1C
        ]);
        assert_modes_equivalent(&image, 20, 1_000);

        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&image);
        let mut dev = TestDev::default();
        for _ in 0..5 {
            cpu.run_frame(1_000, &mut dev);
        }
        assert_eq!(cpu.reg(Reg(2)), 0xAA05, "fused tail must observe patches");
    }

    #[test]
    fn hash_state_matches_serialized_bytes() {
        let prog = assemble(&[I::Rnd(Reg(0)), I::Addi(Reg(1), 3), I::Yield, I::Jmp(0)]);
        let mut cpu = Cpu::new(0, 7);
        cpu.load_image(&prog);
        let mut dev = TestDev::default();
        cpu.run_frame(100, &mut dev);
        let mut bytes = Vec::new();
        cpu.serialize(&mut bytes);
        let mut h = StateHasher::new();
        cpu.hash_state(&mut h);
        assert_eq!(h.finish(), crate::hash::fnv1a(&bytes));
    }

    #[test]
    fn interp_stats_accumulate_on_fast_path_only() {
        let image = assemble(&[I::Addi(Reg(0), 1), I::Yield, I::Jmp(0)]);
        let mut fast = Cpu::new(0, 0);
        fast.load_image(&image);
        let mut dev = TestDev::default();
        fast.run_frame(100, &mut dev);
        fast.run_frame(100, &mut dev);
        let s = fast.interp_stats();
        // Frame 1: 2 cold fills + jmp fill, frame 2 re-dispatches warm.
        assert_eq!(s.misses, 3);
        assert!(s.hits >= 2);
        assert_eq!(s.flushes, 1, "load_image flushes");

        let mut slow = Cpu::new(0, 0);
        slow.load_image(&image);
        slow.set_interp_mode(InterpMode::Reference);
        slow.run_frame(100, &mut dev);
        let s = slow.interp_stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }
}
