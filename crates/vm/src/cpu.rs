//! The 16-bit CPU core of the coplay console.
//!
//! A deterministic fetch–decode–execute interpreter over a 64 KiB address
//! space. Devices (video, audio, joypads) are reached through the
//! [`Devices`] trait so the CPU itself stays a pure function of
//! (state, program, inputs) — the property the whole reproduction rests on.

use crate::isa::{Instruction, Reg, Syscall, INSTR_SIZE};

/// Size of the address space, in bytes.
pub const MEM_SIZE: usize = 0x1_0000;

/// Initial stack pointer (stack grows downward from the top of memory).
pub const STACK_TOP: u16 = 0xFFFE;

/// The CPU's window onto the rest of the board.
pub trait Devices {
    /// Reads an input port: 0 = players 1–2 buttons, 1 = players 3–4,
    /// 2 = frame counter low word, 3 = frame counter high word.
    fn input_port(&mut self, port: u8) -> u16;

    /// Executes a system call; `regs` exposes the full register file
    /// (arguments are in `r1`–`r5` by convention).
    fn syscall(&mut self, call: Syscall, regs: &[u16; 16]);
}

/// Why the CPU stopped executing before its cycle budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The frame's cycle budget was exhausted (forced frame end).
    BudgetExhausted,
    /// The program executed `yield`.
    Yielded,
    /// The program executed `halt`; the CPU stays halted until reset.
    Halted,
    /// The program faulted (illegal instruction); the CPU stays halted.
    Faulted,
}

/// The register file, program counter, flags, memory, and deterministic RNG.
#[derive(Clone)]
pub struct Cpu {
    regs: [u16; 16],
    pc: u16,
    sp: u16,
    flag_z: bool,
    flag_n: bool,
    flag_c: bool,
    lcg: u32,
    halted: bool,
    faulted: bool,
    mem: Box<[u8; MEM_SIZE]>,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("0x{:04x}", self.pc))
            .field("sp", &format_args!("0x{:04x}", self.sp))
            .field("regs", &self.regs)
            .field("halted", &self.halted)
            .field("faulted", &self.faulted)
            .finish_non_exhaustive()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed memory, `pc = entry`, and RNG seeded with
    /// `seed`.
    pub fn new(entry: u16, seed: u32) -> Cpu {
        Cpu {
            regs: [0; 16],
            pc: entry,
            sp: STACK_TOP,
            flag_z: false,
            flag_n: false,
            flag_c: false,
            lcg: seed,
            halted: false,
            faulted: false,
            mem: vec![0u8; MEM_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("len"),
        }
    }

    /// Copies `image` into memory starting at address 0.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds [`MEM_SIZE`].
    pub fn load_image(&mut self, image: &[u8]) {
        assert!(image.len() <= MEM_SIZE, "image exceeds address space");
        self.mem[..image.len()].copy_from_slice(image);
    }

    /// Reads register `r`.
    pub fn reg(&self, r: Reg) -> u16 {
        self.regs[r.0 as usize]
    }

    /// Writes register `r` (for tests and debuggers).
    pub fn set_reg(&mut self, r: Reg, v: u16) {
        self.regs[r.0 as usize] = v;
    }

    /// The program counter.
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// `true` once the CPU has executed `halt` or faulted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// `true` if the halt was caused by an illegal instruction.
    pub fn is_faulted(&self) -> bool {
        self.faulted
    }

    /// Reads a byte of memory.
    pub fn read_byte(&self, addr: u16) -> u8 {
        self.mem[addr as usize]
    }

    /// Writes a byte of memory.
    pub fn write_byte(&mut self, addr: u16, v: u8) {
        self.mem[addr as usize] = v;
    }

    /// Reads a little-endian word; the high byte wraps around the address
    /// space.
    pub fn read_word(&self, addr: u16) -> u16 {
        let lo = self.mem[addr as usize] as u16;
        let hi = self.mem[addr.wrapping_add(1) as usize] as u16;
        lo | (hi << 8)
    }

    /// Writes a little-endian word with wrapping semantics.
    pub fn write_word(&mut self, addr: u16, v: u16) {
        self.mem[addr as usize] = v as u8;
        self.mem[addr.wrapping_add(1) as usize] = (v >> 8) as u8;
    }

    /// Runs until `yield`/`halt`/fault or `budget` instructions, whichever
    /// comes first. Returns the stop reason and cycles consumed.
    pub fn run_frame<D: Devices>(&mut self, budget: u32, dev: &mut D) -> (Stop, u32) {
        if self.halted {
            return (Stop::Halted, 0);
        }
        let mut cycles = 0;
        while cycles < budget {
            cycles += 1;
            match self.step(dev) {
                Stop::BudgetExhausted => continue, // means "keep running"
                stop => return (stop, cycles),
            }
        }
        (Stop::BudgetExhausted, cycles)
    }

    /// Executes one instruction. Returns [`Stop::BudgetExhausted`] as the
    /// "keep running" sentinel (the caller owns the budget).
    fn step<D: Devices>(&mut self, dev: &mut D) -> Stop {
        let bytes = [
            self.mem[self.pc as usize],
            self.mem[self.pc.wrapping_add(1) as usize],
            self.mem[self.pc.wrapping_add(2) as usize],
            self.mem[self.pc.wrapping_add(3) as usize],
        ];
        let Some(instr) = Instruction::decode(bytes) else {
            self.halted = true;
            self.faulted = true;
            return Stop::Faulted;
        };
        self.pc = self.pc.wrapping_add(INSTR_SIZE);

        use Instruction::*;
        match instr {
            Nop => {}
            Halt => {
                self.halted = true;
                return Stop::Halted;
            }
            Yield => return Stop::Yielded,
            Ldi(d, imm) => self.regs[d.0 as usize] = imm,
            Mov(d, s) => self.regs[d.0 as usize] = self.regs[s.0 as usize],
            Add(d, s) => {
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].wrapping_add(self.regs[s.0 as usize])
            }
            Sub(d, s) => {
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].wrapping_sub(self.regs[s.0 as usize])
            }
            Mul(d, s) => {
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].wrapping_mul(self.regs[s.0 as usize])
            }
            Div(d, s) => {
                let den = self.regs[s.0 as usize];
                self.regs[d.0 as usize] =
                    self.regs[d.0 as usize].checked_div(den).unwrap_or(0xFFFF);
            }
            Modu(d, s) => {
                let den = self.regs[s.0 as usize];
                self.regs[d.0 as usize] = self.regs[d.0 as usize].checked_rem(den).unwrap_or(0);
            }
            And(d, s) => self.regs[d.0 as usize] &= self.regs[s.0 as usize],
            Or(d, s) => self.regs[d.0 as usize] |= self.regs[s.0 as usize],
            Xor(d, s) => self.regs[d.0 as usize] ^= self.regs[s.0 as usize],
            Shli(d, imm) => self.regs[d.0 as usize] <<= imm & 15,
            Shri(d, imm) => self.regs[d.0 as usize] >>= imm & 15,
            Addi(d, imm) => self.regs[d.0 as usize] = self.regs[d.0 as usize].wrapping_add(imm),
            Subi(d, imm) => self.regs[d.0 as usize] = self.regs[d.0 as usize].wrapping_sub(imm),
            Neg(d) => {
                self.regs[d.0 as usize] = (self.regs[d.0 as usize] as i16).wrapping_neg() as u16
            }
            Cmp(d, s) => self.set_flags(self.regs[d.0 as usize], self.regs[s.0 as usize]),
            Cmpi(d, imm) => self.set_flags(self.regs[d.0 as usize], imm),
            Jmp(a) => self.pc = a,
            Jz(a) => {
                if self.flag_z {
                    self.pc = a;
                }
            }
            Jnz(a) => {
                if !self.flag_z {
                    self.pc = a;
                }
            }
            Jlt(a) => {
                if self.flag_n {
                    self.pc = a;
                }
            }
            Jge(a) => {
                if !self.flag_n {
                    self.pc = a;
                }
            }
            Call(a) => {
                self.push(self.pc);
                self.pc = a;
            }
            Ret => self.pc = self.pop(),
            Ldw(d, s, off) => {
                let addr = self.regs[s.0 as usize].wrapping_add(off as u16);
                self.regs[d.0 as usize] = self.read_word(addr);
            }
            Stw(d, s, off) => {
                let addr = self.regs[d.0 as usize].wrapping_add(off as u16);
                self.write_word(addr, self.regs[s.0 as usize]);
            }
            Ldb(d, s, off) => {
                let addr = self.regs[s.0 as usize].wrapping_add(off as u16);
                self.regs[d.0 as usize] = self.read_byte(addr) as u16;
            }
            Stb(d, s, off) => {
                let addr = self.regs[d.0 as usize].wrapping_add(off as u16);
                self.write_byte(addr, self.regs[s.0 as usize] as u8);
            }
            Push(s) => self.push(self.regs[s.0 as usize]),
            Pop(d) => {
                let v = self.pop();
                self.regs[d.0 as usize] = v;
            }
            In(d, port) => self.regs[d.0 as usize] = dev.input_port(port),
            Rnd(d) => {
                self.lcg = self.lcg.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                self.regs[d.0 as usize] = (self.lcg >> 16) as u16;
            }
            Sys(call) => dev.syscall(call, &self.regs),
        }
        Stop::BudgetExhausted
    }

    fn set_flags(&mut self, a: u16, b: u16) {
        self.flag_z = a == b;
        self.flag_n = (a as i16) < (b as i16);
        self.flag_c = a < b;
    }

    fn push(&mut self, v: u16) {
        self.sp = self.sp.wrapping_sub(2);
        self.write_word(self.sp, v);
    }

    fn pop(&mut self) -> u16 {
        let v = self.read_word(self.sp);
        self.sp = self.sp.wrapping_add(2);
        v
    }

    /// Serializes the complete CPU state (registers, flags, RNG, memory).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        for r in self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.extend_from_slice(&self.sp.to_le_bytes());
        out.push(
            (self.flag_z as u8)
                | (self.flag_n as u8) << 1
                | (self.flag_c as u8) << 2
                | (self.halted as u8) << 3
                | (self.faulted as u8) << 4,
        );
        out.extend_from_slice(&self.lcg.to_le_bytes());
        out.extend_from_slice(&self.mem[..]);
    }

    /// Number of bytes [`Cpu::serialize`] writes.
    pub const SERIALIZED_LEN: usize = 32 + 2 + 2 + 1 + 4 + MEM_SIZE;

    /// Restores state written by [`Cpu::serialize`].
    ///
    /// Returns `None` if `bytes` is too short.
    pub fn deserialize(&mut self, bytes: &[u8]) -> Option<()> {
        if bytes.len() < Self::SERIALIZED_LEN {
            return None;
        }
        let mut pos = 0;
        for r in &mut self.regs {
            *r = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("len 2"));
            pos += 2;
        }
        self.pc = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("len 2"));
        pos += 2;
        self.sp = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("len 2"));
        pos += 2;
        let f = bytes[pos];
        pos += 1;
        self.flag_z = f & 1 != 0;
        self.flag_n = f & 2 != 0;
        self.flag_c = f & 4 != 0;
        self.halted = f & 8 != 0;
        self.faulted = f & 16 != 0;
        self.lcg = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4"));
        pos += 4;
        self.mem.copy_from_slice(&bytes[pos..pos + MEM_SIZE]);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction as I;

    /// Test devices: records syscalls, serves canned inputs.
    #[derive(Default)]
    struct TestDev {
        inputs: [u16; 4],
        calls: Vec<(Syscall, [u16; 16])>,
    }

    impl Devices for TestDev {
        fn input_port(&mut self, port: u8) -> u16 {
            self.inputs.get(port as usize).copied().unwrap_or(0)
        }
        fn syscall(&mut self, call: Syscall, regs: &[u16; 16]) {
            self.calls.push((call, *regs));
        }
    }

    fn assemble(instrs: &[I]) -> Vec<u8> {
        instrs.iter().flat_map(|i| i.encode()).collect()
    }

    fn run(instrs: &[I]) -> (Cpu, TestDev, Stop) {
        let mut cpu = Cpu::new(0, 42);
        cpu.load_image(&assemble(instrs));
        let mut dev = TestDev::default();
        let (stop, _) = cpu.run_frame(10_000, &mut dev);
        (cpu, dev, stop)
    }

    #[test]
    fn arithmetic_basics() {
        let (cpu, _, stop) = run(&[
            I::Ldi(Reg(0), 7),
            I::Ldi(Reg(1), 5),
            I::Add(Reg(0), Reg(1)), // 12
            I::Subi(Reg(0), 2),     // 10
            I::Mul(Reg(0), Reg(1)), // 50
            I::Halt,
        ]);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(cpu.reg(Reg(0)), 50);
    }

    #[test]
    fn wrapping_arithmetic() {
        let (cpu, _, _) = run(&[I::Ldi(Reg(0), 0xFFFF), I::Addi(Reg(0), 2), I::Halt]);
        assert_eq!(cpu.reg(Reg(0)), 1);
    }

    #[test]
    fn division_by_zero_is_deterministic() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 100),
            I::Ldi(Reg(1), 0),
            I::Div(Reg(0), Reg(1)),
            I::Ldi(Reg(2), 100),
            I::Modu(Reg(2), Reg(1)),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(0)), 0xFFFF);
        assert_eq!(cpu.reg(Reg(2)), 0);
    }

    #[test]
    fn logic_and_shifts() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 0b1100),
            I::Ldi(Reg(1), 0b1010),
            I::And(Reg(0), Reg(1)), // 0b1000
            I::Shli(Reg(0), 2),     // 0b100000
            I::Shri(Reg(0), 1),     // 0b10000
            I::Ldi(Reg(2), 0b1010),
            I::Or(Reg(2), Reg(1)),  // 0b1010
            I::Xor(Reg(2), Reg(1)), // 0
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(0)), 0b10000);
        assert_eq!(cpu.reg(Reg(2)), 0);
    }

    #[test]
    fn neg_is_twos_complement() {
        let (cpu, _, _) = run(&[I::Ldi(Reg(0), 5), I::Neg(Reg(0)), I::Halt]);
        assert_eq!(cpu.reg(Reg(0)) as i16, -5);
    }

    #[test]
    fn conditional_jumps_signed() {
        // r0 = -3 (0xFFFD), r1 = 2; JLT must take the signed view.
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 0xFFFD),
            I::Ldi(Reg(1), 2),
            I::Cmp(Reg(0), Reg(1)),
            I::Jlt(5 * 4),      // skip the next instruction
            I::Ldi(Reg(2), 99), // must be skipped
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(2)), 0);
    }

    #[test]
    fn jz_jnz() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 5),
            I::Cmpi(Reg(0), 5),
            I::Jz(4 * 4),
            I::Halt, // skipped
            I::Ldi(Reg(1), 1),
            I::Cmpi(Reg(0), 6),
            I::Jnz(8 * 4),
            I::Halt, // skipped
            I::Ldi(Reg(2), 2),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(1)), 1);
        assert_eq!(cpu.reg(Reg(2)), 2);
    }

    #[test]
    fn call_ret_uses_stack() {
        let (cpu, _, _) = run(&[
            I::Call(3 * 4),
            I::Ldi(Reg(1), 7), // executed after ret
            I::Halt,
            I::Ldi(Reg(0), 42), // subroutine
            I::Ret,
        ]);
        assert_eq!(cpu.reg(Reg(0)), 42);
        assert_eq!(cpu.reg(Reg(1)), 7);
    }

    #[test]
    fn push_pop() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 11),
            I::Ldi(Reg(1), 22),
            I::Push(Reg(0)),
            I::Push(Reg(1)),
            I::Pop(Reg(2)),
            I::Pop(Reg(3)),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(2)), 22);
        assert_eq!(cpu.reg(Reg(3)), 11);
    }

    #[test]
    fn memory_word_and_byte_access() {
        let (cpu, _, _) = run(&[
            I::Ldi(Reg(0), 0x8000),
            I::Ldi(Reg(1), 0xABCD),
            I::Stw(Reg(0), Reg(1), 0),
            I::Ldw(Reg(2), Reg(0), 0),
            I::Ldb(Reg(3), Reg(0), 0), // low byte
            I::Ldb(Reg(4), Reg(0), 1), // high byte
            I::Ldi(Reg(5), 0x42),
            I::Stb(Reg(0), Reg(5), 2),
            I::Ldb(Reg(6), Reg(0), 2),
            I::Halt,
        ]);
        assert_eq!(cpu.reg(Reg(2)), 0xABCD);
        assert_eq!(cpu.reg(Reg(3)), 0xCD);
        assert_eq!(cpu.reg(Reg(4)), 0xAB);
        assert_eq!(cpu.reg(Reg(6)), 0x42);
    }

    #[test]
    fn input_ports_via_devices() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&assemble(&[I::In(Reg(0), 0), I::In(Reg(1), 1), I::Halt]));
        let mut dev = TestDev {
            inputs: [0x1234, 0x5678, 0, 0],
            calls: vec![],
        };
        cpu.run_frame(100, &mut dev);
        assert_eq!(cpu.reg(Reg(0)), 0x1234);
        assert_eq!(cpu.reg(Reg(1)), 0x5678);
    }

    #[test]
    fn syscall_reaches_devices_with_registers() {
        let (_, dev, _) = run(&[
            I::Ldi(Reg(1), 10),
            I::Ldi(Reg(2), 20),
            I::Sys(Syscall::Pix),
            I::Halt,
        ]);
        assert_eq!(dev.calls.len(), 1);
        let (call, regs) = &dev.calls[0];
        assert_eq!(*call, Syscall::Pix);
        assert_eq!(regs[1], 10);
        assert_eq!(regs[2], 20);
    }

    #[test]
    fn rnd_is_deterministic_per_seed() {
        let prog = assemble(&[I::Rnd(Reg(0)), I::Rnd(Reg(1)), I::Halt]);
        let mut a = Cpu::new(0, 7);
        a.load_image(&prog);
        let mut b = Cpu::new(0, 7);
        b.load_image(&prog);
        let mut c = Cpu::new(0, 8);
        c.load_image(&prog);
        let mut dev = TestDev::default();
        a.run_frame(100, &mut dev);
        b.run_frame(100, &mut dev);
        c.run_frame(100, &mut dev);
        assert_eq!(a.reg(Reg(0)), b.reg(Reg(0)));
        assert_eq!(a.reg(Reg(1)), b.reg(Reg(1)));
        assert_ne!(
            (a.reg(Reg(0)), a.reg(Reg(1))),
            (c.reg(Reg(0)), c.reg(Reg(1)))
        );
    }

    #[test]
    fn yield_stops_frame_but_not_machine() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&assemble(&[I::Addi(Reg(0), 1), I::Yield, I::Jmp(0)]));
        let mut dev = TestDev::default();
        let (stop, _) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Yielded);
        assert!(!cpu.is_halted());
        let (stop, _) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Yielded);
        assert_eq!(cpu.reg(Reg(0)), 2);
    }

    #[test]
    fn budget_exhaustion_ends_frame() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&assemble(&[I::Addi(Reg(0), 1), I::Jmp(0)]));
        let mut dev = TestDev::default();
        let (stop, cycles) = cpu.run_frame(50, &mut dev);
        assert_eq!(stop, Stop::BudgetExhausted);
        assert_eq!(cycles, 50);
    }

    #[test]
    fn illegal_instruction_faults_permanently() {
        let mut cpu = Cpu::new(0, 0);
        cpu.load_image(&[0xFF, 0, 0, 0]);
        let mut dev = TestDev::default();
        let (stop, _) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Faulted);
        assert!(cpu.is_halted());
        assert!(cpu.is_faulted());
        let (stop, cycles) = cpu.run_frame(100, &mut dev);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(cycles, 0);
    }

    #[test]
    fn serialize_roundtrip_preserves_execution() {
        let prog = assemble(&[I::Rnd(Reg(0)), I::Addi(Reg(1), 3), I::Yield, I::Jmp(0)]);
        let mut a = Cpu::new(0, 99);
        a.load_image(&prog);
        let mut dev = TestDev::default();
        for _ in 0..5 {
            a.run_frame(100, &mut dev);
        }
        let mut bytes = Vec::new();
        a.serialize(&mut bytes);
        assert_eq!(bytes.len(), Cpu::SERIALIZED_LEN);

        let mut b = Cpu::new(0, 0);
        b.deserialize(&bytes).unwrap();
        for _ in 0..5 {
            a.run_frame(100, &mut dev);
            b.run_frame(100, &mut dev);
        }
        assert_eq!(a.reg(Reg(0)), b.reg(Reg(0)));
        assert_eq!(a.reg(Reg(1)), b.reg(Reg(1)));
    }

    #[test]
    fn deserialize_rejects_short_input() {
        let mut cpu = Cpu::new(0, 0);
        assert!(cpu.deserialize(&[0; 10]).is_none());
    }
}
