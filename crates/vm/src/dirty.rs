//! Page-granular dirty tracking for snapshot capture and restore.
//!
//! A [`DirtyPages`] bitmap records which 256-byte pages of a byte region
//! (a memory image, a framebuffer, a serialized snapshot) may have
//! changed since the bitmap was last cleared. "May have" is the
//! contract: markers are allowed to over-approximate (marking a page
//! whose bytes ended up unchanged costs only bandwidth), but must never
//! under-approximate — every byte that differs from the reference copy
//! has to live in a marked page, or an incremental capture/restore
//! would silently corrupt state.
//!
//! The bitmap has a *saturated* representation (`mark_all`) that means
//! "assume everything is dirty" without allocating backing words, so
//! freshly constructed devices and machines with no tracking at all can
//! participate in the same API at full-copy cost.

/// Size of one dirty-tracking page, in bytes.
///
/// 256 bytes keeps the bitmap for the whole 84 KiB console image at
/// ~42 words while still bounding the cost of a false-positive page to
/// a quarter of a cache line's worth of scanning work.
pub const PAGE_SIZE: usize = 256;

/// A dirty bitmap over a byte region, one bit per [`PAGE_SIZE`] page.
///
/// Cleared bits are a *guarantee* (the page is byte-identical to the
/// reference copy); set bits are a *hint* (the page may differ). The
/// saturated state set by [`DirtyPages::mark_all`] represents "every
/// page dirty" without touching the word vector, so it is free to
/// construct and union.
#[derive(Debug, Clone, Default)]
pub struct DirtyPages {
    /// One bit per page; empty while saturated or never marked.
    words: Vec<u64>,
    /// Length in bytes of the tracked region.
    len: usize,
    /// Saturated flag: when set, every page is considered dirty and
    /// `words` is ignored.
    all: bool,
}

impl DirtyPages {
    /// Creates an all-clean bitmap tracking `len` bytes.
    pub fn new(len: usize) -> DirtyPages {
        DirtyPages {
            // detlint: allow(hot_alloc) -- constructor; steady state reuses via reset()
            words: vec![0u64; len.div_ceil(PAGE_SIZE).div_ceil(64)],
            len,
            all: false,
        }
    }

    /// Creates a saturated (every page dirty) bitmap tracking `len`
    /// bytes. Allocation-free.
    pub fn all_dirty(len: usize) -> DirtyPages {
        DirtyPages {
            // detlint: allow(hot_alloc) -- empty Vec, no heap allocation happens
            words: Vec::new(),
            len,
            all: true,
        }
    }

    /// Clears every bit and re-targets the bitmap at a `len`-byte
    /// region, reusing the existing word allocation where possible.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.all = false;
        let n = len.div_ceil(PAGE_SIZE).div_ceil(64);
        self.words.clear();
        self.words.resize(n, 0);
    }

    /// Length in bytes of the tracked region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tracked region is zero bytes long.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks the page containing byte offset `off` dirty. Offsets past
    /// the tracked length are ignored.
    #[inline]
    pub fn mark(&mut self, off: usize) {
        if self.all || off >= self.len {
            return;
        }
        let page = off / PAGE_SIZE;
        if let Some(w) = self.words.get_mut(page / 64) {
            *w |= 1u64 << (page % 64);
        }
    }

    /// Marks every page overlapping `[off, off + n)` dirty. The range is
    /// clamped to the tracked length.
    pub fn mark_range(&mut self, off: usize, n: usize) {
        if self.all || n == 0 || off >= self.len {
            return;
        }
        let end = off.saturating_add(n).min(self.len);
        let first = off / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        let (fw, lw) = (first / 64, last / 64);
        // Whole-word masks instead of a per-page loop: wide ranges (a
        // saturating restore, a framebuffer clear) set 64 pages per store.
        let lo_mask = u64::MAX << (first % 64);
        let hi_mask = u64::MAX >> (63 - last % 64);
        if fw == lw {
            if let Some(w) = self.words.get_mut(fw) {
                *w |= lo_mask & hi_mask;
            }
            return;
        }
        if let Some(w) = self.words.get_mut(fw) {
            *w |= lo_mask;
        }
        for w in self.words.iter_mut().take(lw).skip(fw + 1) {
            *w = u64::MAX;
        }
        if let Some(w) = self.words.get_mut(lw) {
            *w |= hi_mask;
        }
    }

    /// Saturates the bitmap: every page is considered dirty.
    pub fn mark_all(&mut self) {
        self.all = true;
        self.words.clear();
    }

    /// `true` if the bitmap is saturated (every page dirty).
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Unions `other`'s dirty set into `self`. If the two bitmaps track
    /// regions of different lengths (the region was resized between
    /// captures) the result saturates — the only sound answer.
    pub fn union(&mut self, other: &DirtyPages) {
        if self.all {
            return;
        }
        if other.all || other.len != self.len || other.words.len() != self.words.len() {
            self.mark_all();
            return;
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Replaces `self` with a copy of `other`, reusing the word
    /// allocation.
    pub fn copy_from(&mut self, other: &DirtyPages) {
        self.len = other.len;
        self.all = other.all;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Number of pages currently marked dirty.
    pub fn count_pages(&self) -> usize {
        if self.all {
            self.len.div_ceil(PAGE_SIZE)
        } else {
            self.words.iter().map(|w| w.count_ones() as usize).sum()
        }
    }

    /// ORs raw dirty-bitmap words into `self`, with bit 0 of `src`
    /// landing on page `first_page`. This is the word-level fast path for
    /// folding a component's page bitmap into an image bitmap when the
    /// component's region starts on a page boundary — no per-page loop.
    /// Bits that would land past the tracked length are dropped.
    pub fn or_word_bits(&mut self, src: &[u64], first_page: usize) {
        if self.all {
            return;
        }
        let npages = self.len.div_ceil(PAGE_SIZE);
        let (wo, bo) = (first_page / 64, first_page % 64);
        for (i, &s) in src.iter().enumerate() {
            if s == 0 {
                continue;
            }
            if let Some(w) = self.words.get_mut(wo + i) {
                *w |= s << bo;
            }
            if bo != 0 {
                if let Some(w) = self.words.get_mut(wo + i + 1) {
                    *w |= s >> (64 - bo);
                }
            }
        }
        // Clear any bits shifted past the final page.
        if !npages.is_multiple_of(64) {
            if let Some(w) = self.words.get_mut(npages / 64) {
                *w &= (1u64 << (npages % 64)) - 1;
            }
        }
    }

    /// Unions `other`'s dirty pages into `self` with `other`'s byte 0
    /// landing at byte offset `off` of `self`'s region. `off` must be a
    /// multiple of [`PAGE_SIZE`] so pages map one-to-one. A saturated
    /// `other` marks its whole `[off, off + other.len())` window.
    pub fn union_at(&mut self, other: &DirtyPages, off: usize) {
        debug_assert!(off.is_multiple_of(PAGE_SIZE), "offset must be page-aligned");
        if self.all {
            return;
        }
        if other.all {
            self.mark_range(off, other.len);
            return;
        }
        self.or_word_bits(&other.words, off / PAGE_SIZE);
    }

    /// Iterates maximal runs of dirty pages as half-open byte ranges
    /// `(start, end)`, clamped to the tracked length. A saturated bitmap
    /// yields the single range `(0, len)`.
    pub fn byte_ranges(&self) -> DirtyRanges<'_> {
        DirtyRanges {
            dirty: self,
            page: 0,
            done: self.len == 0,
        }
    }
}

impl PartialEq for DirtyPages {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let pages = self.len.div_ceil(PAGE_SIZE);
        (0..pages).all(|p| self.page_is_dirty(p) == other.page_is_dirty(p))
    }
}

impl Eq for DirtyPages {}

impl DirtyPages {
    /// `true` if page `p` is marked dirty.
    fn page_is_dirty(&self, p: usize) -> bool {
        self.all
            || self
                .words
                .get(p / 64)
                .is_some_and(|w| w & (1u64 << (p % 64)) != 0)
    }
}

/// Iterator over coalesced dirty byte ranges; see
/// [`DirtyPages::byte_ranges`].
#[derive(Debug)]
pub struct DirtyRanges<'a> {
    dirty: &'a DirtyPages,
    page: usize,
    done: bool,
}

impl Iterator for DirtyRanges<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.done {
            return None;
        }
        if self.dirty.all {
            self.done = true;
            return Some((0, self.dirty.len));
        }
        let pages = self.dirty.len.div_ceil(PAGE_SIZE);
        let words = &self.dirty.words;
        // Hop to the next set bit a word at a time — this iterator sits
        // on the checkpoint hot path, where a per-page scan of a mostly
        // clean bitmap costs more than the captures it guides.
        let mut p = self.page;
        loop {
            if p >= pages {
                self.done = true;
                return None;
            }
            let w = words[p / 64] >> (p % 64);
            if w != 0 {
                p += w.trailing_zeros() as usize;
                break;
            }
            p = (p / 64 + 1) * 64;
        }
        if p >= pages {
            self.done = true;
            return None;
        }
        let start = p;
        // Walk off the end of the run of set bits, crossing whole words
        // of ones without touching individual pages.
        while p < pages {
            let rem = p % 64;
            let ones = (!(words[p / 64] >> rem)).trailing_zeros() as usize;
            p += ones.min(64 - rem);
            if ones < 64 - rem {
                break;
            }
        }
        self.page = p;
        Some((start * PAGE_SIZE, (p * PAGE_SIZE).min(self.dirty.len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bitmap_is_clean() {
        let d = DirtyPages::new(1000);
        assert_eq!(d.count_pages(), 0);
        assert_eq!(d.byte_ranges().count(), 0);
        assert!(!d.is_all());
    }

    #[test]
    fn mark_sets_the_covering_page() {
        let mut d = DirtyPages::new(1000);
        d.mark(0);
        d.mark(600);
        assert_eq!(d.count_pages(), 2);
        let ranges: Vec<_> = d.byte_ranges().collect();
        assert_eq!(ranges, vec![(0, 256), (512, 768)]);
    }

    #[test]
    fn adjacent_pages_coalesce_and_tail_clamps() {
        let mut d = DirtyPages::new(1000);
        d.mark_range(200, 700); // pages 0..=3 (ends at 899)
        let ranges: Vec<_> = d.byte_ranges().collect();
        assert_eq!(ranges, vec![(0, 1000)]);
        assert_eq!(d.count_pages(), 4);
    }

    #[test]
    fn disjoint_ranges_stay_disjoint() {
        let mut d = DirtyPages::new(4096);
        d.mark_range(0, 1);
        d.mark_range(1024, 512);
        let ranges: Vec<_> = d.byte_ranges().collect();
        assert_eq!(ranges, vec![(0, 256), (1024, 1536)]);
    }

    #[test]
    fn saturated_bitmap_yields_one_full_range() {
        let mut d = DirtyPages::new(1000);
        d.mark_all();
        assert!(d.is_all());
        assert_eq!(d.count_pages(), 4);
        assert_eq!(d.byte_ranges().collect::<Vec<_>>(), vec![(0, 1000)]);
        assert_eq!(DirtyPages::all_dirty(1000), d);
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let mut d = DirtyPages::new(100);
        d.mark(100);
        d.mark(usize::MAX);
        d.mark_range(100, 50);
        d.mark_range(0, 0);
        assert_eq!(d.count_pages(), 0);
        d.mark_range(50, usize::MAX - 10);
        assert_eq!(d.byte_ranges().collect::<Vec<_>>(), vec![(0, 100)]);
    }

    #[test]
    fn union_merges_and_length_mismatch_saturates() {
        let mut a = DirtyPages::new(1024);
        a.mark(0);
        let mut b = DirtyPages::new(1024);
        b.mark(512);
        a.union(&b);
        assert_eq!(
            a.byte_ranges().collect::<Vec<_>>(),
            vec![(0, 256), (512, 768)]
        );

        let c = DirtyPages::new(2048);
        a.union(&c);
        assert!(a.is_all(), "length mismatch must saturate");
    }

    #[test]
    fn union_with_saturated_saturates() {
        let mut a = DirtyPages::new(1024);
        a.mark(7);
        a.union(&DirtyPages::all_dirty(1024));
        assert!(a.is_all());
    }

    #[test]
    fn reset_clears_and_retargets() {
        let mut d = DirtyPages::all_dirty(1000);
        d.reset(2000);
        assert!(!d.is_all());
        assert_eq!(d.len(), 2000);
        assert_eq!(d.count_pages(), 0);
        d.mark(1999);
        assert_eq!(d.byte_ranges().collect::<Vec<_>>(), vec![(1792, 2000)]);
    }

    #[test]
    fn copy_from_mirrors_the_source() {
        let mut src = DirtyPages::new(1024);
        src.mark(300);
        let mut dst = DirtyPages::new(16);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.len(), 1024);
    }

    #[test]
    fn or_word_bits_lands_on_the_offset_page() {
        let mut d = DirtyPages::new(100 * 256);
        // Bits 0 and 65 of the source, landing at page 3: pages 3 and 68.
        d.or_word_bits(&[1, 2], 3);
        assert_eq!(
            d.byte_ranges().collect::<Vec<_>>(),
            vec![(3 * 256, 4 * 256), (68 * 256, 69 * 256)]
        );
        // Unaligned page offset crosses word boundaries correctly.
        let mut d = DirtyPages::new(200 * 256);
        d.or_word_bits(&[1u64 << 63], 70); // page 63 + 70 = 133
        assert_eq!(
            d.byte_ranges().collect::<Vec<_>>(),
            vec![(133 * 256, 134 * 256)]
        );
        // Bits past the tracked length are dropped.
        let mut d = DirtyPages::new(10 * 256);
        d.or_word_bits(&[u64::MAX], 5);
        assert_eq!(
            d.byte_ranges().collect::<Vec<_>>(),
            vec![(5 * 256, 10 * 256)]
        );
        assert_eq!(d.count_pages(), 5);
    }

    #[test]
    fn union_at_translates_pages() {
        let mut inner = DirtyPages::new(1024);
        inner.mark(0);
        inner.mark(700);
        let mut outer = DirtyPages::new(8192);
        outer.union_at(&inner, 1024);
        assert_eq!(
            outer.byte_ranges().collect::<Vec<_>>(),
            vec![(1024, 1280), (1536, 1792)]
        );
        // Saturated inner marks exactly its window.
        let mut outer = DirtyPages::new(8192);
        outer.union_at(&DirtyPages::all_dirty(1024), 2048);
        assert_eq!(outer.byte_ranges().collect::<Vec<_>>(), vec![(2048, 3072)]);
    }

    #[test]
    fn zero_length_region_is_inert() {
        let mut d = DirtyPages::new(0);
        assert!(d.is_empty());
        d.mark(0);
        d.mark_all();
        assert_eq!(d.byte_ranges().count(), 0);
        assert_eq!(DirtyPages::new(0).byte_ranges().count(), 0);
        assert_eq!(d.count_pages(), 0);
    }
}
