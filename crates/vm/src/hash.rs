//! Deterministic state hashing.
//!
//! The paper assumes the game VM is deterministic and relies on replicas
//! converging bit-for-bit. `fnv1a` gives every machine a cheap, portable,
//! platform-independent digest of its state so tests and sessions can
//! *verify* convergence every frame instead of assuming it.

/// FNV-1a 64-bit hash of `bytes`.
///
/// # Examples
///
/// ```
/// use coplay_vm::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An incremental FNV-1a hasher for composing state digests field by field.
///
/// # Examples
///
/// ```
/// use coplay_vm::{fnv1a, StateHasher};
///
/// let mut h = StateHasher::new();
/// h.write(b"ab");
/// assert_eq!(h.finish(), fnv1a(b"ab"));
/// ```
#[derive(Debug, Clone)]
pub struct StateHasher(u64);

impl StateHasher {
    /// Creates a hasher in the FNV offset-basis state.
    pub fn new() -> StateHasher {
        StateHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `i32` in little-endian byte order.
    pub fn write_i32(&mut self, v: i32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u16` in little-endian byte order.
    pub fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // Standard FNV-1a test vector.
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = StateHasher::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn typed_writes_are_order_sensitive() {
        let mut a = StateHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writes_cover_widths() {
        let mut h = StateHasher::new();
        h.write_u16(0xBEEF);
        h.write_i32(-7);
        let mut manual = StateHasher::new();
        manual.write(&0xBEEFu16.to_le_bytes());
        manual.write(&(-7i32).to_le_bytes());
        assert_eq!(h.finish(), manual.finish());
    }
}
