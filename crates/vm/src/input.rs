//! The input model of the paper, made concrete.
//!
//! §3 of the paper views the per-frame input to the game as a *binary
//! string* in which "different sites control different bits"; `SET[k]` maps
//! site `k` to its bit set, the sets are pairwise disjoint, and bits owned by
//! no site (`SET[-1]`) are ignored. Here the string is an [`InputWord`]
//! (32 bits = up to four joypads of eight buttons) and [`PortMap`] realizes
//! `SET[k]`.

use std::fmt;

/// One joypad button. The discriminant is the button's bit within its
/// player's byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Button {
    /// D-pad up.
    Up = 0,
    /// D-pad down.
    Down = 1,
    /// D-pad left.
    Left = 2,
    /// D-pad right.
    Right = 3,
    /// Primary action button.
    A = 4,
    /// Secondary action button.
    B = 5,
    /// Start button.
    Start = 6,
    /// Select button.
    Select = 7,
}

impl Button {
    /// All buttons, in bit order.
    pub const ALL: [Button; 8] = [
        Button::Up,
        Button::Down,
        Button::Left,
        Button::Right,
        Button::A,
        Button::B,
        Button::Start,
        Button::Select,
    ];
}

impl fmt::Display for Button {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Button::Up => "Up",
            Button::Down => "Down",
            Button::Left => "Left",
            Button::Right => "Right",
            Button::A => "A",
            Button::B => "B",
            Button::Start => "Start",
            Button::Select => "Select",
        };
        f.write_str(s)
    }
}

/// A player slot on the virtual arcade board (0–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Player(pub u8);

impl Player {
    /// Player one.
    pub const ONE: Player = Player(0);
    /// Player two.
    pub const TWO: Player = Player(1);

    /// The maximum number of player slots on the board.
    pub const MAX: usize = 4;

    fn shift(self) -> u32 {
        debug_assert!((self.0 as usize) < Player::MAX);
        (self.0 as u32) * 8
    }
}

impl fmt::Display for Player {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// The complete input to one frame: the paper's "binary string".
///
/// Bits `[8k, 8k+8)` belong to player `k`. The word is `Copy`, ordered, and
/// hashable so it can live in input buffers and wire messages unchanged.
///
/// # Examples
///
/// ```
/// use coplay_vm::{Button, InputWord, Player};
///
/// let mut word = InputWord::NONE;
/// word.press(Player::ONE, Button::Left);
/// word.press(Player::TWO, Button::A);
/// assert!(word.is_pressed(Player::ONE, Button::Left));
/// assert!(!word.is_pressed(Player::TWO, Button::Left));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InputWord(pub u32);

impl InputWord {
    /// No buttons pressed anywhere.
    pub const NONE: InputWord = InputWord(0);

    /// Builds a word with only `player`'s byte set to `buttons`.
    pub fn for_player(player: Player, buttons: u8) -> InputWord {
        InputWord((buttons as u32) << player.shift())
    }

    /// Presses `button` for `player`.
    pub fn press(&mut self, player: Player, button: Button) {
        self.0 |= 1 << (player.shift() + button as u32);
    }

    /// Releases `button` for `player`.
    pub fn release(&mut self, player: Player, button: Button) {
        self.0 &= !(1 << (player.shift() + button as u32));
    }

    /// Whether `player` holds `button` this frame.
    pub fn is_pressed(self, player: Player, button: Button) -> bool {
        self.0 & (1 << (player.shift() + button as u32)) != 0
    }

    /// The byte of buttons held by `player`.
    pub fn player_byte(self, player: Player) -> u8 {
        (self.0 >> player.shift()) as u8
    }

    /// Bitwise union of two words (used to merge partial inputs).
    pub fn merged(self, other: InputWord) -> InputWord {
        InputWord(self.0 | other.0)
    }

    /// Keeps only the bits selected by `mask`.
    pub fn masked(self, mask: u32) -> InputWord {
        InputWord(self.0 & mask)
    }
}

impl fmt::Display for InputWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

impl From<u32> for InputWord {
    fn from(v: u32) -> Self {
        InputWord(v)
    }
}

impl From<InputWord> for u32 {
    fn from(w: InputWord) -> u32 {
        w.0
    }
}

/// The paper's `SET[k]`: which bits of the [`InputWord`] each site owns.
///
/// Sets are pairwise disjoint by construction: a player slot can be assigned
/// to at most one site. Bits of unassigned players are the paper's `SET[-1]`
/// and are stripped before reaching the game.
///
/// # Examples
///
/// ```
/// use coplay_vm::{Button, InputWord, Player, PortMap};
///
/// let map = PortMap::two_player();
/// let mut local = InputWord::NONE;
/// local.press(Player::ONE, Button::A);
/// local.press(Player::TWO, Button::B); // not ours — will be stripped
///
/// let mine = map.partial_input(0, local);
/// assert!(mine.is_pressed(Player::ONE, Button::A));
/// assert!(!mine.is_pressed(Player::TWO, Button::B));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMap {
    // owner[p] = site controlling player slot p, or None.
    owner: [Option<u8>; Player::MAX],
}

impl PortMap {
    /// A map with no assignments (every bit is `SET[-1]`).
    pub fn empty() -> PortMap {
        PortMap {
            owner: [None; Player::MAX],
        }
    }

    /// The classic configuration: site 0 plays P1, site 1 plays P2.
    pub fn two_player() -> PortMap {
        let mut m = PortMap::empty();
        m.assign(0, Player::ONE);
        m.assign(1, Player::TWO);
        m
    }

    /// Each of the first `n` sites controls the player slot of its own index.
    ///
    /// # Panics
    ///
    /// Panics if `n > 4`.
    pub fn one_per_site(n: usize) -> PortMap {
        assert!(n <= Player::MAX, "at most {} player slots", Player::MAX);
        let mut m = PortMap::empty();
        for s in 0..n {
            m.assign(s as u8, Player(s as u8));
        }
        m
    }

    /// Gives `site` control of `player`.
    ///
    /// Reassigning a player to a different site replaces the previous owner
    /// (sets stay disjoint).
    pub fn assign(&mut self, site: u8, player: Player) {
        self.owner[player.0 as usize] = Some(site);
    }

    /// The bit mask of `SET[site]`.
    pub fn site_mask(&self, site: u8) -> u32 {
        let mut mask = 0u32;
        for (p, owner) in self.owner.iter().enumerate() {
            if *owner == Some(site) {
                mask |= 0xFFu32 << (p * 8);
            }
        }
        mask
    }

    /// The mask of bits owned by *any* site (complement of `SET[-1]`).
    pub fn assigned_mask(&self) -> u32 {
        let mut mask = 0u32;
        for (p, owner) in self.owner.iter().enumerate() {
            if owner.is_some() {
                mask |= 0xFFu32 << (p * 8);
            }
        }
        mask
    }

    /// Sites that own at least one bit, ascending.
    pub fn sites(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self.owner.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Player slots owned by `site`, ascending.
    pub fn players_of(&self, site: u8) -> Vec<Player> {
        (0..Player::MAX as u8)
            .filter(|&p| self.owner[p as usize] == Some(site))
            .map(Player)
            .collect()
    }

    /// Extracts `site`'s partial input from a locally sampled word
    /// (the paper's `I(SET[k])`).
    pub fn partial_input(&self, site: u8, word: InputWord) -> InputWord {
        word.masked(self.site_mask(site))
    }

    /// Merges partial inputs from all sites into the word fed to the game,
    /// dropping any bit not owned by a site (`SET[-1]`).
    pub fn merge<I: IntoIterator<Item = (u8, InputWord)>>(&self, partials: I) -> InputWord {
        let mut out = InputWord::NONE;
        for (site, partial) in partials {
            out = out.merged(partial.masked(self.site_mask(site)));
        }
        out
    }
}

impl Default for PortMap {
    fn default() -> Self {
        PortMap::two_player()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn press_release_roundtrip() {
        let mut w = InputWord::NONE;
        w.press(Player::TWO, Button::Start);
        assert!(w.is_pressed(Player::TWO, Button::Start));
        assert_eq!(w.player_byte(Player::TWO), 1 << 6);
        w.release(Player::TWO, Button::Start);
        assert_eq!(w, InputWord::NONE);
    }

    #[test]
    fn player_bytes_do_not_interfere() {
        let mut w = InputWord::NONE;
        for b in Button::ALL {
            w.press(Player::ONE, b);
        }
        assert_eq!(w.player_byte(Player::ONE), 0xFF);
        assert_eq!(w.player_byte(Player::TWO), 0);
    }

    #[test]
    fn two_player_masks_are_disjoint_and_cover_two_bytes() {
        let m = PortMap::two_player();
        assert_eq!(m.site_mask(0), 0x0000_00FF);
        assert_eq!(m.site_mask(1), 0x0000_FF00);
        assert_eq!(m.site_mask(0) & m.site_mask(1), 0);
        assert_eq!(m.assigned_mask(), 0x0000_FFFF);
    }

    #[test]
    fn reassignment_keeps_sets_disjoint() {
        let mut m = PortMap::two_player();
        m.assign(0, Player::TWO); // site 0 takes over P2
        assert_eq!(m.site_mask(0), 0x0000_FFFF);
        assert_eq!(m.site_mask(1), 0);
    }

    #[test]
    fn unassigned_bits_are_stripped_on_merge() {
        let m = PortMap::two_player();
        let mut w0 = InputWord::NONE;
        w0.press(Player::ONE, Button::A);
        w0.press(Player(2), Button::A); // nobody owns P3
        let merged = m.merge([(0, w0)]);
        assert!(merged.is_pressed(Player::ONE, Button::A));
        assert_eq!(merged.player_byte(Player(2)), 0);
    }

    #[test]
    fn merge_combines_sites() {
        let m = PortMap::two_player();
        let w0 = InputWord::for_player(Player::ONE, 0b1);
        let w1 = InputWord::for_player(Player::TWO, 0b10);
        let merged = m.merge([(0, w0), (1, w1)]);
        assert!(merged.is_pressed(Player::ONE, Button::Up));
        assert!(merged.is_pressed(Player::TWO, Button::Down));
    }

    #[test]
    fn partial_input_strips_foreign_bits() {
        let m = PortMap::two_player();
        let mut w = InputWord::NONE;
        w.press(Player::ONE, Button::Left);
        w.press(Player::TWO, Button::Right);
        assert_eq!(m.partial_input(0, w).player_byte(Player::TWO), 0);
        assert_eq!(m.partial_input(1, w).player_byte(Player::ONE), 0);
    }

    #[test]
    fn one_per_site_and_queries() {
        let m = PortMap::one_per_site(3);
        assert_eq!(m.sites(), vec![0, 1, 2]);
        assert_eq!(m.players_of(2), vec![Player(2)]);
        assert_eq!(m.players_of(3), vec![]);
    }

    #[test]
    #[should_panic(expected = "at most 4")]
    fn one_per_site_rejects_too_many() {
        let _ = PortMap::one_per_site(5);
    }

    #[test]
    fn conversions_and_display() {
        let w: InputWord = 0xDEAD_BEEFu32.into();
        assert_eq!(u32::from(w), 0xDEAD_BEEF);
        assert_eq!(format!("{w}"), "deadbeef");
        assert_eq!(format!("{}", Player::TWO), "P2");
        assert_eq!(format!("{}", Button::Select), "Select");
    }
}
