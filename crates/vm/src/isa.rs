//! The instruction set of the coplay arcade console.
//!
//! A small, fixed-width (4-byte) 16-bit ISA, rich enough to write real
//! games in (see `coplay-games`' ROM titles) and small enough to audit for
//! determinism. [`Instruction`] round-trips through [`Instruction::encode`]
//! and [`Instruction::decode`]; its `Display` impl doubles as the
//! disassembler.

use std::fmt;

/// A register index `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Validates and constructs a register index.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 15`.
    pub fn new(idx: u8) -> Reg {
        assert!(idx < 16, "register index out of range: {idx}");
        Reg(idx)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// System-call numbers accepted by `SYS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Syscall {
    /// Clear screen to colour `r1`.
    Cls = 0,
    /// Plot pixel at (`r1`,`r2`) colour `r3`.
    Pix = 1,
    /// Fill rect (`r1`,`r2`,`r3`×`r4`) colour `r5`.
    Rect = 2,
    /// Square-wave tone: freq `r1` Hz, `r2` frames, volume `r3`.
    Tone = 3,
    /// Draw decimal `r3` at (`r1`,`r2`) colour `r4`.
    Num = 4,
}

impl Syscall {
    /// Decodes a syscall number.
    pub fn from_u8(v: u8) -> Option<Syscall> {
        Some(match v {
            0 => Syscall::Cls,
            1 => Syscall::Pix,
            2 => Syscall::Rect,
            3 => Syscall::Tone,
            4 => Syscall::Num,
            _ => return None,
        })
    }
}

/// One decoded instruction.
///
/// # Examples
///
/// ```
/// use coplay_vm::{Instruction, Reg};
///
/// let i = Instruction::Ldi(Reg(3), 0x1234);
/// let bytes = i.encode();
/// assert_eq!(Instruction::decode(bytes), Some(i));
/// assert_eq!(i.to_string(), "ldi r3, 0x1234");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Do nothing.
    Nop,
    /// Stop the CPU permanently.
    Halt,
    /// End the current video frame.
    Yield,
    /// `rd = imm`.
    Ldi(Reg, u16),
    /// `rd = rs`.
    Mov(Reg, Reg),
    /// `rd += rs` (wrapping).
    Add(Reg, Reg),
    /// `rd -= rs` (wrapping).
    Sub(Reg, Reg),
    /// `rd *= rs` (wrapping).
    Mul(Reg, Reg),
    /// `rd /= rs`; division by zero yields `0xFFFF`.
    Div(Reg, Reg),
    /// `rd %= rs`; modulo by zero yields `0`.
    Modu(Reg, Reg),
    /// `rd &= rs`.
    And(Reg, Reg),
    /// `rd |= rs`.
    Or(Reg, Reg),
    /// `rd ^= rs`.
    Xor(Reg, Reg),
    /// `rd <<= imm & 15`.
    Shli(Reg, u16),
    /// `rd >>= imm & 15` (logical).
    Shri(Reg, u16),
    /// `rd += imm` (wrapping).
    Addi(Reg, u16),
    /// `rd -= imm` (wrapping).
    Subi(Reg, u16),
    /// `rd = -rd` (two's complement).
    Neg(Reg),
    /// Set flags from `rd - rs`.
    Cmp(Reg, Reg),
    /// Set flags from `rd - imm`.
    Cmpi(Reg, u16),
    /// Unconditional jump.
    Jmp(u16),
    /// Jump if zero flag.
    Jz(u16),
    /// Jump if not zero flag.
    Jnz(u16),
    /// Jump if signed less-than flag.
    Jlt(u16),
    /// Jump if not signed less-than.
    Jge(u16),
    /// Push return address, jump.
    Call(u16),
    /// Pop return address, jump back.
    Ret,
    /// `rd = word at [rs + off]`.
    Ldw(Reg, Reg, u8),
    /// `word at [rd + off] = rs`.
    Stw(Reg, Reg, u8),
    /// `rd = byte at [rs + off]` (zero-extended).
    Ldb(Reg, Reg, u8),
    /// `byte at [rd + off] = low byte of rs`.
    Stb(Reg, Reg, u8),
    /// Push `rs`.
    Push(Reg),
    /// Pop into `rd`.
    Pop(Reg),
    /// `rd = input/frame port`.
    In(Reg, u8),
    /// `rd = next pseudo-random` (deterministic LCG).
    Rnd(Reg),
    /// Invoke a [`Syscall`].
    Sys(Syscall),
}

/// Size of every encoded instruction, in bytes.
pub const INSTR_SIZE: u16 = 4;

// Opcode bytes. Grouped by shape for decoder clarity.
mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const YIELD: u8 = 0x02;
    pub const LDI: u8 = 0x10;
    pub const MOV: u8 = 0x11;
    pub const ADD: u8 = 0x12;
    pub const SUB: u8 = 0x13;
    pub const MUL: u8 = 0x14;
    pub const AND: u8 = 0x15;
    pub const OR: u8 = 0x16;
    pub const XOR: u8 = 0x17;
    pub const SHLI: u8 = 0x18;
    pub const SHRI: u8 = 0x19;
    pub const ADDI: u8 = 0x1A;
    pub const SUBI: u8 = 0x1B;
    pub const NEG: u8 = 0x1C;
    pub const DIV: u8 = 0x1D;
    pub const MODU: u8 = 0x1E;
    pub const CMP: u8 = 0x20;
    pub const CMPI: u8 = 0x21;
    pub const JMP: u8 = 0x30;
    pub const JZ: u8 = 0x31;
    pub const JNZ: u8 = 0x32;
    pub const JLT: u8 = 0x33;
    pub const JGE: u8 = 0x34;
    pub const CALL: u8 = 0x35;
    pub const RET: u8 = 0x36;
    pub const LDW: u8 = 0x40;
    pub const STW: u8 = 0x41;
    pub const LDB: u8 = 0x42;
    pub const STB: u8 = 0x43;
    pub const PUSH: u8 = 0x44;
    pub const POP: u8 = 0x45;
    pub const IN: u8 = 0x50;
    pub const RND: u8 = 0x51;
    pub const SYS: u8 = 0x60;
}

impl Instruction {
    /// Encodes to the fixed 4-byte wire form.
    pub fn encode(self) -> [u8; 4] {
        use Instruction::*;
        let (o, a, b, c) = match self {
            Nop => (op::NOP, 0, 0, 0),
            Halt => (op::HALT, 0, 0, 0),
            Yield => (op::YIELD, 0, 0, 0),
            Ldi(rd, imm) => (op::LDI, rd.0, imm as u8, (imm >> 8) as u8),
            Mov(rd, rs) => (op::MOV, rd.0, rs.0, 0),
            Add(rd, rs) => (op::ADD, rd.0, rs.0, 0),
            Sub(rd, rs) => (op::SUB, rd.0, rs.0, 0),
            Mul(rd, rs) => (op::MUL, rd.0, rs.0, 0),
            Div(rd, rs) => (op::DIV, rd.0, rs.0, 0),
            Modu(rd, rs) => (op::MODU, rd.0, rs.0, 0),
            And(rd, rs) => (op::AND, rd.0, rs.0, 0),
            Or(rd, rs) => (op::OR, rd.0, rs.0, 0),
            Xor(rd, rs) => (op::XOR, rd.0, rs.0, 0),
            Shli(rd, imm) => (op::SHLI, rd.0, imm as u8, (imm >> 8) as u8),
            Shri(rd, imm) => (op::SHRI, rd.0, imm as u8, (imm >> 8) as u8),
            Addi(rd, imm) => (op::ADDI, rd.0, imm as u8, (imm >> 8) as u8),
            Subi(rd, imm) => (op::SUBI, rd.0, imm as u8, (imm >> 8) as u8),
            Neg(rd) => (op::NEG, rd.0, 0, 0),
            Cmp(rd, rs) => (op::CMP, rd.0, rs.0, 0),
            Cmpi(rd, imm) => (op::CMPI, rd.0, imm as u8, (imm >> 8) as u8),
            Jmp(a16) => (op::JMP, 0, a16 as u8, (a16 >> 8) as u8),
            Jz(a16) => (op::JZ, 0, a16 as u8, (a16 >> 8) as u8),
            Jnz(a16) => (op::JNZ, 0, a16 as u8, (a16 >> 8) as u8),
            Jlt(a16) => (op::JLT, 0, a16 as u8, (a16 >> 8) as u8),
            Jge(a16) => (op::JGE, 0, a16 as u8, (a16 >> 8) as u8),
            Call(a16) => (op::CALL, 0, a16 as u8, (a16 >> 8) as u8),
            Ret => (op::RET, 0, 0, 0),
            Ldw(rd, rs, off) => (op::LDW, pack(rd, rs), off, 0),
            Stw(rd, rs, off) => (op::STW, pack(rd, rs), off, 0),
            Ldb(rd, rs, off) => (op::LDB, pack(rd, rs), off, 0),
            Stb(rd, rs, off) => (op::STB, pack(rd, rs), off, 0),
            Push(rs) => (op::PUSH, rs.0, 0, 0),
            Pop(rd) => (op::POP, rd.0, 0, 0),
            In(rd, port) => (op::IN, rd.0, port, 0),
            Rnd(rd) => (op::RND, rd.0, 0, 0),
            Sys(n) => (op::SYS, n as u8, 0, 0),
        };
        [o, a, b, c]
    }

    /// Decodes a 4-byte wire form; `None` for illegal encodings.
    pub fn decode(bytes: [u8; 4]) -> Option<Instruction> {
        use Instruction::*;
        let [o, a, b, c] = bytes;
        let imm = u16::from_le_bytes([b, c]);
        let rd = || -> Option<Reg> { (a < 16).then_some(Reg(a)) };
        let rr = || -> Option<(Reg, Reg)> { (a < 16 && b < 16).then_some((Reg(a), Reg(b))) };
        Some(match o {
            op::NOP => Nop,
            op::HALT => Halt,
            op::YIELD => Yield,
            op::LDI => Ldi(rd()?, imm),
            op::MOV => {
                let (d, s) = rr()?;
                Mov(d, s)
            }
            op::ADD => {
                let (d, s) = rr()?;
                Add(d, s)
            }
            op::SUB => {
                let (d, s) = rr()?;
                Sub(d, s)
            }
            op::MUL => {
                let (d, s) = rr()?;
                Mul(d, s)
            }
            op::DIV => {
                let (d, s) = rr()?;
                Div(d, s)
            }
            op::MODU => {
                let (d, s) = rr()?;
                Modu(d, s)
            }
            op::AND => {
                let (d, s) = rr()?;
                And(d, s)
            }
            op::OR => {
                let (d, s) = rr()?;
                Or(d, s)
            }
            op::XOR => {
                let (d, s) = rr()?;
                Xor(d, s)
            }
            op::SHLI => Shli(rd()?, imm),
            op::SHRI => Shri(rd()?, imm),
            op::ADDI => Addi(rd()?, imm),
            op::SUBI => Subi(rd()?, imm),
            op::NEG => Neg(rd()?),
            op::CMP => {
                let (d, s) = rr()?;
                Cmp(d, s)
            }
            op::CMPI => Cmpi(rd()?, imm),
            op::JMP => Jmp(imm),
            op::JZ => Jz(imm),
            op::JNZ => Jnz(imm),
            op::JLT => Jlt(imm),
            op::JGE => Jge(imm),
            op::CALL => Call(imm),
            op::RET => Ret,
            op::LDW => {
                let (d, s) = unpack(a)?;
                Ldw(d, s, b)
            }
            op::STW => {
                let (d, s) = unpack(a)?;
                Stw(d, s, b)
            }
            op::LDB => {
                let (d, s) = unpack(a)?;
                Ldb(d, s, b)
            }
            op::STB => {
                let (d, s) = unpack(a)?;
                Stb(d, s, b)
            }
            op::PUSH => Push(rd()?),
            op::POP => Pop(rd()?),
            op::IN => In(rd()?, b),
            op::RND => Rnd(rd()?),
            op::SYS => Sys(Syscall::from_u8(a)?),
            _ => return None,
        })
    }
}

fn pack(a: Reg, b: Reg) -> u8 {
    (a.0 << 4) | (b.0 & 0x0F)
}

fn unpack(v: u8) -> Option<(Reg, Reg)> {
    Some((Reg(v >> 4), Reg(v & 0x0F)))
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match self {
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Yield => write!(f, "yield"),
            Ldi(d, i) => write!(f, "ldi {d}, 0x{i:04x}"),
            Mov(d, s) => write!(f, "mov {d}, {s}"),
            Add(d, s) => write!(f, "add {d}, {s}"),
            Sub(d, s) => write!(f, "sub {d}, {s}"),
            Mul(d, s) => write!(f, "mul {d}, {s}"),
            Div(d, s) => write!(f, "div {d}, {s}"),
            Modu(d, s) => write!(f, "modu {d}, {s}"),
            And(d, s) => write!(f, "and {d}, {s}"),
            Or(d, s) => write!(f, "or {d}, {s}"),
            Xor(d, s) => write!(f, "xor {d}, {s}"),
            Shli(d, i) => write!(f, "shli {d}, {i}"),
            Shri(d, i) => write!(f, "shri {d}, {i}"),
            Addi(d, i) => write!(f, "addi {d}, {i}"),
            Subi(d, i) => write!(f, "subi {d}, {i}"),
            Neg(d) => write!(f, "neg {d}"),
            Cmp(d, s) => write!(f, "cmp {d}, {s}"),
            Cmpi(d, i) => write!(f, "cmpi {d}, {i}"),
            Jmp(a) => write!(f, "jmp 0x{a:04x}"),
            Jz(a) => write!(f, "jz 0x{a:04x}"),
            Jnz(a) => write!(f, "jnz 0x{a:04x}"),
            Jlt(a) => write!(f, "jlt 0x{a:04x}"),
            Jge(a) => write!(f, "jge 0x{a:04x}"),
            Call(a) => write!(f, "call 0x{a:04x}"),
            Ret => write!(f, "ret"),
            Ldw(d, s, o) => write!(f, "ldw {d}, [{s}+{o}]"),
            Stw(d, s, o) => write!(f, "stw [{d}+{o}], {s}"),
            Ldb(d, s, o) => write!(f, "ldb {d}, [{s}+{o}]"),
            Stb(d, s, o) => write!(f, "stb [{d}+{o}], {s}"),
            Push(s) => write!(f, "push {s}"),
            Pop(d) => write!(f, "pop {d}"),
            In(d, p) => write!(f, "in {d}, {p}"),
            Rnd(d) => write!(f, "rnd {d}"),
            Sys(n) => write!(f, "sys {}", *n as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            Nop,
            Halt,
            Yield,
            Ldi(Reg(1), 0xBEEF),
            Mov(Reg(2), Reg(3)),
            Add(Reg(4), Reg(5)),
            Sub(Reg(6), Reg(7)),
            Mul(Reg(8), Reg(9)),
            Div(Reg(1), Reg(2)),
            Modu(Reg(3), Reg(4)),
            And(Reg(10), Reg(11)),
            Or(Reg(12), Reg(13)),
            Xor(Reg(14), Reg(15)),
            Shli(Reg(0), 3),
            Shri(Reg(1), 12),
            Addi(Reg(2), 999),
            Subi(Reg(3), 1),
            Neg(Reg(4)),
            Cmp(Reg(5), Reg(6)),
            Cmpi(Reg(7), 0x8000),
            Jmp(0x0100),
            Jz(0x0104),
            Jnz(0x0108),
            Jlt(0x010C),
            Jge(0x0110),
            Call(0x0200),
            Ret,
            Ldw(Reg(1), Reg(2), 4),
            Stw(Reg(3), Reg(4), 8),
            Ldb(Reg(5), Reg(6), 0),
            Stb(Reg(7), Reg(8), 255),
            Push(Reg(9)),
            Pop(Reg(10)),
            In(Reg(11), 2),
            Rnd(Reg(12)),
            Sys(Syscall::Rect),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_samples() {
            assert_eq!(Instruction::decode(i.encode()), Some(i), "{i}");
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert_eq!(Instruction::decode([0xFF, 0, 0, 0]), None);
        assert_eq!(Instruction::decode([0x03, 0, 0, 0]), None);
    }

    #[test]
    fn decode_rejects_bad_register() {
        // LDI with register 16.
        assert_eq!(Instruction::decode([0x10, 16, 0, 0]), None);
        // MOV with second register out of range.
        assert_eq!(Instruction::decode([0x11, 0, 16, 0]), None);
    }

    #[test]
    fn decode_rejects_bad_syscall() {
        assert_eq!(Instruction::decode([0x60, 99, 0, 0]), None);
    }

    #[test]
    fn display_is_nonempty_for_all() {
        for i in all_samples() {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn immediate_encoding_is_little_endian() {
        let bytes = Instruction::Ldi(Reg(0), 0x1234).encode();
        assert_eq!(&bytes[2..], &[0x34, 0x12]);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_new_validates() {
        let _ = Reg::new(16);
    }

    #[test]
    fn syscall_decoding() {
        assert_eq!(Syscall::from_u8(0), Some(Syscall::Cls));
        assert_eq!(Syscall::from_u8(4), Some(Syscall::Num));
        assert_eq!(Syscall::from_u8(5), None);
    }
}
