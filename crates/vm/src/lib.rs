//! The emulator substrate of coplay: a deterministic virtual arcade machine.
//!
//! The ICDCS 2009 paper extends the MAME arcade emulator with a sync module;
//! the games themselves are untouched black boxes. This crate is the
//! from-scratch stand-in for that emulator:
//!
//! * [`InputWord`] / [`PortMap`] — the paper's input-as-binary-string model
//!   with per-site bit ownership (`SET[k]`).
//! * [`Machine`] — the deterministic, frame-stepped black box the sync layer
//!   replicates (determinism contract documented on the trait).
//! * [`Console`] — a complete small arcade board: 16-bit CPU
//!   ([`Cpu`], [`Instruction`]), 160×120 palettized video ([`FrameBuffer`]),
//!   a square-wave audio channel ([`AudioChannel`]), joypad ports, and a
//!   deterministic RNG, all driven at a fixed cycle budget per frame.
//! * [`assemble`] — a two-pass assembler so games ship as readable source.
//! * [`Rom`] — the distributable game image whose hash both sites compare
//!   before starting a session.
//!
//! # Examples
//!
//! Assemble a cartridge, run it, and verify replica convergence:
//!
//! ```
//! use coplay_vm::{assemble, Console, InputWord, Machine};
//!
//! let rom = assemble(
//!     r#"
//!     .title "Spinner"
//!     loop:
//!         rnd r1
//!         addi r0, 1
//!         yield
//!         jmp loop
//!     "#,
//! )?;
//!
//! let mut a = Console::new(rom.clone());
//! let mut b = Console::new(rom);
//! for _ in 0..120 {
//!     a.step_frame(InputWord::NONE);
//!     b.step_frame(InputWord::NONE);
//! }
//! assert_eq!(a.state_hash(), b.state_hash());
//! # Ok::<(), coplay_vm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assembler;
mod audio;
mod console;
mod cpu;
mod dirty;
mod hash;
mod input;
mod isa;
mod machine;
mod predecode;
mod rom;
mod video;

pub use assembler::{assemble, disassemble, AsmError};
pub use audio::{AudioChannel, SAMPLE_RATE};
pub use console::{Console, DEFAULT_CYCLES_PER_FRAME};
pub use cpu::{Cpu, Devices, Stop, MEM_SIZE, STACK_TOP};
pub use dirty::{DirtyPages, DirtyRanges, PAGE_SIZE as DIRTY_PAGE_SIZE};
pub use hash::{fnv1a, StateHasher};
pub use input::{Button, InputWord, Player, PortMap};
pub use isa::{Instruction, Reg, Syscall, INSTR_SIZE};
pub use machine::{Machine, MachineInfo, NullMachine, StateError, StepMode};
pub use predecode::{InterpMode, InterpStats};
pub use rom::{Rom, RomBuilder, RomError};
pub use video::{Color, FrameBuffer, HEIGHT, PALETTE, WIDTH};
