//! The game-transparent machine abstraction.
//!
//! §2 of the paper: "state transition is a black box to this work. We do not
//! seek to modify the game behavior nor sneak into the game itself…". The
//! sync layer only ever sees this trait — a deterministic frame-step driven
//! by an [`InputWord`] — which is precisely what makes the approach *game
//! transparent*: anything implementing [`Machine`] is instantly playable
//! over the network.

use std::error::Error;
use std::fmt;

use crate::dirty::DirtyPages;
use crate::input::InputWord;
use crate::predecode::InterpStats;
use crate::video::FrameBuffer;

/// Static facts about a machine (the "ROM header").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// Human-readable title.
    pub title: String,
    /// Number of player slots the game reads.
    pub players: u8,
    /// The constant frame rate the game is authored for (the paper's CFPS;
    /// "normally 60").
    pub cfps: u32,
}

impl MachineInfo {
    /// Convenience constructor for the common 60 FPS case.
    pub fn new(title: impl Into<String>, players: u8) -> MachineInfo {
        MachineInfo {
            title: title.into(),
            players,
            cfps: 60,
        }
    }
}

impl fmt::Display for MachineInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}P @ {}fps)", self.title, self.players, self.cfps)
    }
}

/// Error restoring a machine from a serialized state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The snapshot is shorter than the format requires.
    Truncated {
        /// Bytes required.
        expected: usize,
        /// Bytes supplied.
        actual: usize,
    },
    /// The snapshot does not carry the expected magic/version tag.
    BadMagic,
    /// The snapshot belongs to a different machine or ROM.
    WrongMachine,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Truncated { expected, actual } => {
                write!(
                    f,
                    "state snapshot truncated: need {expected} bytes, got {actual}"
                )
            }
            StateError::BadMagic => write!(f, "state snapshot has an unrecognized header"),
            StateError::WrongMachine => write!(f, "state snapshot is for a different machine"),
        }
    }
}

impl Error for StateError {}

/// How a frame's output will be used, letting machines skip presentation
/// work for frames nobody will ever see.
///
/// Rollback repair resimulates several frames only to reach the present:
/// every repaired frame except the last is immediately overwritten, so its
/// framebuffer blits and audio rendering are pure waste. `Headless` lets a
/// machine skip exactly that work. The contract is strict: **authoritative
/// state (CPU, memory, RNG, input ports — everything [`Machine::state_hash`]
/// covers) must advance byte-identically in both modes**; only
/// presentation-layer output (pixels, rendered audio samples) may go stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// The frame will be presented: produce full video/audio output.
    #[default]
    Present,
    /// The frame will never be presented: presentation side effects may be
    /// skipped, state must advance identically.
    Headless,
}

/// A deterministic, frame-stepped game machine.
///
/// # Determinism contract
///
/// This trait encodes the assumption the paper states in §5: *"with the same
/// initial state and same input sequence, the VM always produces the same
/// sequence of output states."* Implementations must not read wall clocks,
/// OS randomness, thread timing, or any other host-dependent source; any
/// pseudo-randomness must be seeded from state that [`Machine::save_state`]
/// captures. Floating point should be avoided (or used in ways that are
/// bit-stable across platforms).
///
/// Violating the contract breaks replica convergence — the sync layer
/// detects this via [`Machine::state_hash`] mismatches but cannot repair it.
///
/// # Examples
///
/// Stepping a machine and checking convergence of two replicas:
///
/// ```
/// use coplay_vm::{InputWord, Machine, NullMachine};
///
/// let mut a = NullMachine::default();
/// let mut b = NullMachine::default();
/// for f in 0..100u32 {
///     let input = InputWord(f % 3);
///     a.step_frame(input);
///     b.step_frame(input);
/// }
/// assert_eq!(a.state_hash(), b.state_hash());
/// ```
pub trait Machine {
    /// Static information about the game.
    fn info(&self) -> MachineInfo;

    /// Returns the machine to its initial (power-on) state.
    fn reset(&mut self);

    /// Advances exactly one frame under `input`.
    fn step_frame(&mut self, input: InputWord);

    /// Advances exactly one frame under `input`, with a hint about whether
    /// the frame will be presented (see [`StepMode`]).
    ///
    /// The default implementation ignores the hint and calls
    /// [`Machine::step_frame`], so existing machines stay source-compatible
    /// and correct — `Headless` is purely an optimization opportunity.
    /// Implementations that honor it must keep state-hash-covered state
    /// byte-identical across modes.
    fn step_frame_mode(&mut self, input: InputWord, mode: StepMode) {
        let _ = mode;
        self.step_frame(input);
    }

    /// Number of frames executed since reset.
    fn frame(&self) -> u64;

    /// The video output of the last completed frame.
    fn framebuffer(&self) -> &FrameBuffer;

    /// The audio samples of the last completed frame (may be empty for
    /// silent machines).
    fn audio_samples(&self) -> &[i16] {
        &[]
    }

    /// A digest of the complete game state. Two replicas that have executed
    /// the same inputs from the same initial state must return equal hashes.
    fn state_hash(&self) -> u64;

    /// Serializes the complete game state (for latecomer joins and saves).
    fn save_state(&self) -> Vec<u8>;

    /// Serializes the complete game state into `out`, reusing its
    /// allocation. `out` is cleared first; after the call it holds exactly
    /// the bytes [`Machine::save_state`] would have returned.
    ///
    /// This is the checkpoint hot path: rollback netcode saves state every
    /// few frames, and a machine that implements this natively lets the
    /// caller pool buffers so steady-state checkpointing allocates nothing.
    /// The default implementation falls back to [`Machine::save_state`]
    /// (one transient allocation per call).
    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&self.save_state());
    }

    /// Restores state captured by [`Machine::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the snapshot is malformed or belongs to a
    /// different machine.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError>;

    /// Incrementally re-captures state into `out`, rewriting only the byte
    /// ranges of the image that may have changed since the *previous*
    /// capture into the same buffer, and reports those ranges in `dirty`.
    ///
    /// Contract: if `out` already holds a byte-exact earlier capture from
    /// this machine, then after the call `out` holds exactly the bytes
    /// [`Machine::save_state`] would return now, and every byte that was
    /// rewritten lies inside a `dirty`-marked page. If `out` holds anything
    /// else (wrong length, another machine's image), the machine must fall
    /// back to a full capture and saturate `dirty`. Either way the call
    /// *consumes* the machine's internal dirty accumulators.
    ///
    /// The default implementation is the always-sound degenerate case —
    /// a full [`Machine::save_state_into`] with `dirty` saturated — so
    /// machines without write-barrier tracking stay valid.
    fn save_state_dirty_into(&mut self, out: &mut Vec<u8>, dirty: &mut DirtyPages) {
        self.save_state_into(out);
        dirty.reset(out.len());
        dirty.mark_all();
    }

    /// Drains the machine's accumulated dirty set into `out`: pages of the
    /// serialized image that may differ from the most recent capture.
    /// `out` is reset first, so callers can pool bitmaps and keep the
    /// steady-state checkpoint path allocation-free. The call *consumes*
    /// the machine's internal accumulators.
    ///
    /// The default implementation reports a saturated zero-length bitmap
    /// ("assume everything changed, length unknown"); consumers normalize
    /// a length mismatch by saturating at their own buffer length.
    fn collect_dirty_into(&mut self, out: &mut DirtyPages) {
        out.reset(0);
        out.mark_all();
    }

    /// Takes (returns and clears) the machine's accumulated dirty set —
    /// the allocating convenience form of [`Machine::collect_dirty_into`].
    /// Rollback uses the dirty set to bound how much of a checkpoint image
    /// a restore has to touch.
    fn take_dirty_pages(&mut self) -> DirtyPages {
        let mut d = DirtyPages::new(0);
        self.collect_dirty_into(&mut d);
        d
    }

    /// Re-serializes only the `dirty`-marked byte ranges of the state
    /// image into `out`.
    ///
    /// Contract: when `out` holds a byte-exact earlier capture from this
    /// machine and every byte that changed since lies inside a marked
    /// page, after the call `out` holds exactly what
    /// [`Machine::save_state`] would return now. Unlike
    /// [`Machine::save_state_dirty_into`] this does **not** touch the
    /// machine's dirty accumulators — the caller already holds the bitmap
    /// (typically from [`Machine::collect_dirty_into`]). Implementations
    /// must fall back to a full capture when `out` or `dirty` disagree
    /// with the image length.
    ///
    /// The default implementation is the always-sound full capture.
    fn save_state_ranges_into(&self, out: &mut Vec<u8>, dirty: &DirtyPages) {
        let _ = dirty;
        self.save_state_into(out);
    }

    /// Restores state captured by [`Machine::save_state`], touching only
    /// the `dirty`-marked byte ranges of the image.
    ///
    /// Contract: sound only when every byte on which the live machine and
    /// `bytes` disagree lies inside a marked page (e.g. `dirty` is the
    /// union of the machine's dirty set and the checkpoint deltas walked
    /// to reach `bytes`). Implementations must re-mark restored ranges
    /// into their accumulators so the caller's capture buffer is patched
    /// on the next incremental capture.
    ///
    /// The default implementation ignores the bitmap and performs a full
    /// [`Machine::load_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the snapshot is malformed or belongs to
    /// a different machine.
    fn load_state_dirty(&mut self, bytes: &[u8], dirty: &DirtyPages) -> Result<(), StateError> {
        let _ = dirty;
        self.load_state(bytes)
    }

    /// Cumulative interpreter decode-cache statistics, for machines that
    /// run on a predecoded-dispatch interpreter (the [`crate::Console`]).
    /// Observability only — never part of the state hash. `None` for
    /// machines without an interpreter cache.
    fn interp_stats(&self) -> Option<InterpStats> {
        None
    }
}

impl<M: Machine + ?Sized> Machine for Box<M> {
    fn info(&self) -> MachineInfo {
        (**self).info()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn step_frame(&mut self, input: InputWord) {
        (**self).step_frame(input)
    }
    fn step_frame_mode(&mut self, input: InputWord, mode: StepMode) {
        (**self).step_frame_mode(input, mode)
    }
    fn frame(&self) -> u64 {
        (**self).frame()
    }
    fn framebuffer(&self) -> &FrameBuffer {
        (**self).framebuffer()
    }
    fn audio_samples(&self) -> &[i16] {
        (**self).audio_samples()
    }
    fn state_hash(&self) -> u64 {
        (**self).state_hash()
    }
    fn save_state(&self) -> Vec<u8> {
        (**self).save_state()
    }
    fn save_state_into(&self, out: &mut Vec<u8>) {
        (**self).save_state_into(out)
    }
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        (**self).load_state(bytes)
    }
    fn save_state_dirty_into(&mut self, out: &mut Vec<u8>, dirty: &mut DirtyPages) {
        (**self).save_state_dirty_into(out, dirty)
    }
    fn collect_dirty_into(&mut self, out: &mut DirtyPages) {
        (**self).collect_dirty_into(out)
    }
    fn take_dirty_pages(&mut self) -> DirtyPages {
        (**self).take_dirty_pages()
    }
    fn save_state_ranges_into(&self, out: &mut Vec<u8>, dirty: &DirtyPages) {
        (**self).save_state_ranges_into(out, dirty)
    }
    fn load_state_dirty(&mut self, bytes: &[u8], dirty: &DirtyPages) -> Result<(), StateError> {
        (**self).load_state_dirty(bytes, dirty)
    }
    fn interp_stats(&self) -> Option<InterpStats> {
        (**self).interp_stats()
    }
}

/// A trivial [`Machine`] for tests and examples: its state is a counter and
/// a running hash of every input it has consumed.
#[derive(Debug, Clone, Default)]
pub struct NullMachine {
    frame: u64,
    digest: u64,
    fb: Option<FrameBuffer>,
}

impl NullMachine {
    /// Creates a fresh machine.
    pub fn new() -> NullMachine {
        NullMachine::default()
    }

    fn fb(&self) -> &FrameBuffer {
        // Lazily materialized 8x8 buffer; NullMachine never draws.
        self.fb
            .as_ref()
            .expect("framebuffer initialized on first step")
    }
}

impl Machine for NullMachine {
    fn info(&self) -> MachineInfo {
        MachineInfo::new("Null", 2)
    }

    fn reset(&mut self) {
        self.frame = 0;
        self.digest = 0;
    }

    fn step_frame(&mut self, input: InputWord) {
        if self.fb.is_none() {
            self.fb = Some(FrameBuffer::new(8, 8));
        }
        let mut h = crate::hash::StateHasher::new();
        h.write_u64(self.digest);
        h.write(&input.0.to_le_bytes());
        self.digest = h.finish();
        self.frame += 1;
    }

    fn frame(&self) -> u64 {
        self.frame
    }

    fn framebuffer(&self) -> &FrameBuffer {
        if self.fb.is_none() {
            // A reset machine that never stepped still owes a framebuffer.
            // detlint: allow(static_state) -- write-once blank buffer, identical on every replica
            static EMPTY: std::sync::OnceLock<FrameBuffer> = std::sync::OnceLock::new();
            return EMPTY.get_or_init(|| FrameBuffer::new(8, 8));
        }
        self.fb()
    }

    fn state_hash(&self) -> u64 {
        let mut h = crate::hash::StateHasher::new();
        h.write_u64(self.frame);
        h.write_u64(self.digest);
        h.finish()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        self.save_state_into(&mut v);
        v
    }

    fn save_state_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&self.frame.to_le_bytes());
        out.extend_from_slice(&self.digest.to_le_bytes());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        if bytes.len() < 16 {
            return Err(StateError::Truncated {
                expected: 16,
                actual: bytes.len(),
            });
        }
        self.frame = u64::from_le_bytes(bytes[0..8].try_into().expect("len 8"));
        self.digest = u64::from_le_bytes(bytes[8..16].try_into().expect("len 8"));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_machine_is_deterministic() {
        let mut a = NullMachine::new();
        let mut b = NullMachine::new();
        for i in 0..50u32 {
            a.step_frame(InputWord(i));
            b.step_frame(InputWord(i));
        }
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.frame(), 50);
    }

    #[test]
    fn null_machine_diverges_on_different_inputs() {
        let mut a = NullMachine::new();
        let mut b = NullMachine::new();
        a.step_frame(InputWord(1));
        b.step_frame(InputWord(2));
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn reset_restores_initial_hash() {
        let mut a = NullMachine::new();
        let initial = a.state_hash();
        a.step_frame(InputWord(7));
        assert_ne!(a.state_hash(), initial);
        a.reset();
        assert_eq!(a.state_hash(), initial);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut a = NullMachine::new();
        for i in 0..10u32 {
            a.step_frame(InputWord(i));
        }
        let snapshot = a.save_state();
        let mut b = NullMachine::new();
        b.load_state(&snapshot).unwrap();
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(b.frame(), 10);
    }

    #[test]
    fn save_state_into_matches_save_state_and_reuses_capacity() {
        let mut m = NullMachine::new();
        for i in 0..10u32 {
            m.step_frame(InputWord(i));
        }
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        m.save_state_into(&mut buf);
        assert_eq!(buf, m.save_state());
        assert_eq!(buf.capacity(), cap, "no reallocation within capacity");
        // A second capture overwrites rather than appends.
        m.step_frame(InputWord(11));
        m.save_state_into(&mut buf);
        assert_eq!(buf, m.save_state());
    }

    #[test]
    fn default_save_state_into_falls_back_to_save_state() {
        // A machine that only implements `save_state` still works through
        // the buffer-reuse entry point.
        struct Legacy(NullMachine);
        impl Machine for Legacy {
            fn info(&self) -> MachineInfo {
                self.0.info()
            }
            fn reset(&mut self) {
                self.0.reset()
            }
            fn step_frame(&mut self, input: InputWord) {
                self.0.step_frame(input)
            }
            fn frame(&self) -> u64 {
                self.0.frame()
            }
            fn framebuffer(&self) -> &FrameBuffer {
                self.0.framebuffer()
            }
            fn state_hash(&self) -> u64 {
                self.0.state_hash()
            }
            fn save_state(&self) -> Vec<u8> {
                self.0.save_state()
            }
            fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
                self.0.load_state(bytes)
            }
        }
        let mut m = Legacy(NullMachine::new());
        m.step_frame(InputWord(3));
        let mut buf = vec![0xFF; 4];
        m.save_state_into(&mut buf);
        assert_eq!(buf, m.save_state());
        // Boxed dyn machines forward to the native implementation.
        let boxed: Box<dyn Machine> = Box::new(NullMachine::new());
        let mut b2 = Vec::new();
        boxed.save_state_into(&mut b2);
        assert_eq!(b2, boxed.save_state());

        // The dirty-capture defaults are the always-sound degenerate case:
        // full capture, everything reported dirty, full restore.
        let mut d = DirtyPages::new(3);
        m.save_state_dirty_into(&mut buf, &mut d);
        assert_eq!(buf, m.save_state());
        assert!(d.is_all(), "default capture saturates the bitmap");
        assert_eq!(d.len(), buf.len());
        assert!(m.take_dirty_pages().is_all());
        let snap = m.save_state();
        let mut fresh = Legacy(NullMachine::new());
        fresh
            .load_state_dirty(&snap, &DirtyPages::new(snap.len()))
            .unwrap();
        assert_eq!(fresh.state_hash(), m.state_hash());

        // And boxed dyn machines forward all three.
        let mut bm: Box<dyn Machine> = Box::new(NullMachine::new());
        bm.step_frame(InputWord(4));
        let mut bbuf = Vec::new();
        let mut bd = DirtyPages::new(0);
        bm.save_state_dirty_into(&mut bbuf, &mut bd);
        assert_eq!(bbuf, bm.save_state());
        assert!(bd.is_all());
        assert!(bm.take_dirty_pages().is_all());
        bm.load_state_dirty(&bbuf, &bd).unwrap();
        assert_eq!(bbuf, bm.save_state());
    }

    #[test]
    fn default_step_frame_mode_falls_back_to_step_frame() {
        // A machine that only implements `step_frame` (NullMachine) still
        // advances identically through the mode-aware entry point.
        let mut a = NullMachine::new();
        let mut b = NullMachine::new();
        a.step_frame(InputWord(9));
        b.step_frame_mode(InputWord(9), StepMode::Headless);
        assert_eq!(a.state_hash(), b.state_hash());
        // Boxed dyn machines forward the mode-aware entry point too.
        let mut boxed: Box<dyn Machine> = Box::new(NullMachine::new());
        boxed.step_frame_mode(InputWord(9), StepMode::Present);
        assert_eq!(boxed.state_hash(), a.state_hash());
        assert_eq!(StepMode::default(), StepMode::Present);
    }

    #[test]
    fn load_rejects_truncated() {
        let mut m = NullMachine::new();
        let err = m.load_state(&[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            StateError::Truncated {
                expected: 16,
                actual: 3
            }
        );
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn framebuffer_available_before_first_step() {
        let m = NullMachine::new();
        assert_eq!(m.framebuffer().width(), 8);
    }

    #[test]
    fn machine_info_display() {
        let info = MachineInfo::new("Test Game", 2);
        assert_eq!(info.to_string(), "Test Game (2P @ 60fps)");
    }
}
