//! The predecoded instruction cache behind the interpreter fast path.
//!
//! The reference interpreter re-decodes the 4-byte instruction word at `pc`
//! on every step; under rollback netcode the same instructions are decoded
//! again on every resimulated frame. [`DecodeCache`] amortizes that work:
//! a dense table covering the whole 64 KiB address space holds one
//! pre-resolved entry per possible `pc`, filled lazily the first time an
//! address executes and dispatched from directly afterwards.
//!
//! Correctness under self-modifying code rests on one invariant: **a slot
//! is warm only while the 4 bytes it was decoded from are unchanged.** The
//! CPU routes every memory store through [`DecodeCache::invalidate`], which
//! re-colds exactly the slots whose fetch window overlaps the written
//! bytes (`addr - 3 ..= addr + len - 1`, wrapping). Whole-image mutations
//! (ROM loads, snapshot restores) flush the table. The cache is never
//! serialized — snapshots stay byte-identical with the reference
//! interpreter, and a restored machine simply re-warms.

use crate::cpu::MEM_SIZE;
use crate::isa::{Instruction, INSTR_SIZE};

/// Which interpreter loop [`crate::Cpu::run_frame`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// Dispatch from the predecoded instruction cache (the default).
    #[default]
    Predecoded,
    /// The original fetch–decode–execute loop, kept as the reference
    /// implementation the fast path is differentially tested against.
    Reference,
}

/// Cumulative decode-cache statistics since power-on.
///
/// These are observability data, not machine state: they are excluded from
/// serialization and state hashes, and both interpreter modes produce
/// byte-identical game state regardless of what they read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions dispatched from a warm cache slot.
    pub hits: u64,
    /// Instructions that needed a fresh decode (cold or invalidated slot).
    pub misses: u64,
    /// Memory stores that re-colded a window of slots.
    pub invalidations: u64,
    /// Whole-table flushes (image loads and snapshot restores).
    pub flushes: u64,
}

impl InterpStats {
    /// Warm-dispatch rate in thousandths (992 = 99.2% of instructions
    /// skipped the decoder). Returns 1000 for an idle interpreter.
    pub fn hit_rate_milli(&self) -> u64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1000;
        }
        self.hits.saturating_mul(1000) / total
    }
}

/// Dense micro-op tag: [`Instruction`] with the operands hoisted out, plus
/// the two cache sentinels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Op {
    /// Slot has no valid decode (never filled, or invalidated).
    Cold,
    /// The bytes at this address do not decode; executing them faults.
    Illegal,
    Nop,
    Halt,
    Yield,
    Ldi,
    Mov,
    Add,
    Sub,
    Mul,
    Div,
    Modu,
    And,
    Or,
    Xor,
    Shli,
    Shri,
    Addi,
    Subi,
    Neg,
    Cmp,
    Cmpi,
    Jmp,
    Jz,
    Jnz,
    Jlt,
    Jge,
    Call,
    Ret,
    Ldw,
    Stw,
    Ldb,
    Stb,
    Push,
    Pop,
    In,
    Rnd,
    Sys,
}

/// Pre-resolved operands for one slot: register indices / ports / syscall
/// numbers in `a` and `b` (packed nibbles already split), immediate or
/// load-store offset in `imm`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Args {
    pub a: u8,
    pub b: u8,
    pub imm: u16,
}

impl Args {
    pub const ZERO: Args = Args { a: 0, b: 0, imm: 0 };
}

/// Lowers a decoded [`Instruction`] into its dispatch-table form. Legality
/// (register ranges, syscall numbers) was already established by
/// [`Instruction::decode`]; this is a pure re-layout.
pub(crate) fn compile(instr: Instruction) -> (Op, Args) {
    use Instruction as I;
    let z = Args::ZERO;
    match instr {
        I::Nop => (Op::Nop, z),
        I::Halt => (Op::Halt, z),
        I::Yield => (Op::Yield, z),
        I::Ldi(d, imm) => (Op::Ldi, Args { a: d.0, b: 0, imm }),
        I::Mov(d, s) => (
            Op::Mov,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Add(d, s) => (
            Op::Add,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Sub(d, s) => (
            Op::Sub,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Mul(d, s) => (
            Op::Mul,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Div(d, s) => (
            Op::Div,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Modu(d, s) => (
            Op::Modu,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::And(d, s) => (
            Op::And,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Or(d, s) => (
            Op::Or,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Xor(d, s) => (
            Op::Xor,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Shli(d, imm) => (Op::Shli, Args { a: d.0, b: 0, imm }),
        I::Shri(d, imm) => (Op::Shri, Args { a: d.0, b: 0, imm }),
        I::Addi(d, imm) => (Op::Addi, Args { a: d.0, b: 0, imm }),
        I::Subi(d, imm) => (Op::Subi, Args { a: d.0, b: 0, imm }),
        I::Neg(d) => (
            Op::Neg,
            Args {
                a: d.0,
                b: 0,
                imm: 0,
            },
        ),
        I::Cmp(d, s) => (
            Op::Cmp,
            Args {
                a: d.0,
                b: s.0,
                imm: 0,
            },
        ),
        I::Cmpi(d, imm) => (Op::Cmpi, Args { a: d.0, b: 0, imm }),
        I::Jmp(t) => (Op::Jmp, Args { a: 0, b: 0, imm: t }),
        I::Jz(t) => (Op::Jz, Args { a: 0, b: 0, imm: t }),
        I::Jnz(t) => (Op::Jnz, Args { a: 0, b: 0, imm: t }),
        I::Jlt(t) => (Op::Jlt, Args { a: 0, b: 0, imm: t }),
        I::Jge(t) => (Op::Jge, Args { a: 0, b: 0, imm: t }),
        I::Call(t) => (Op::Call, Args { a: 0, b: 0, imm: t }),
        I::Ret => (Op::Ret, z),
        I::Ldw(d, s, off) => (
            Op::Ldw,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
            },
        ),
        I::Stw(d, s, off) => (
            Op::Stw,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
            },
        ),
        I::Ldb(d, s, off) => (
            Op::Ldb,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
            },
        ),
        I::Stb(d, s, off) => (
            Op::Stb,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
            },
        ),
        I::Push(s) => (
            Op::Push,
            Args {
                a: s.0,
                b: 0,
                imm: 0,
            },
        ),
        I::Pop(d) => (
            Op::Pop,
            Args {
                a: d.0,
                b: 0,
                imm: 0,
            },
        ),
        I::In(d, port) => (
            Op::In,
            Args {
                a: d.0,
                b: port,
                imm: 0,
            },
        ),
        I::Rnd(d) => (
            Op::Rnd,
            Args {
                a: d.0,
                b: 0,
                imm: 0,
            },
        ),
        I::Sys(n) => (
            Op::Sys,
            Args {
                a: n as u8,
                b: 0,
                imm: 0,
            },
        ),
    }
}

/// One pre-resolved dispatch slot per address in the 64 KiB space.
///
/// Tags and operands live in parallel arrays: the tag array is one byte
/// per slot so a whole-table flush is a single `memset`, and a store's
/// window invalidation touches only tag bytes.
#[derive(Clone)]
pub(crate) struct DecodeCache {
    ops: Box<[Op; MEM_SIZE]>,
    args: Box<[Args; MEM_SIZE]>,
    /// Total fast-path dispatches (misses included); hits are derived.
    dispatches: u64,
    misses: u64,
    invalidations: u64,
    flushes: u64,
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl DecodeCache {
    /// An entirely cold table.
    pub fn new() -> DecodeCache {
        DecodeCache {
            // detlint: allow(hot_alloc) -- one-time 64 K decode table at construction
            ops: vec![Op::Cold; MEM_SIZE]
                .into_boxed_slice()
                .try_into()
                // detlint: allow(panic_path) -- boxed slice has exactly MEM_SIZE elements
                .expect("len"),
            // detlint: allow(hot_alloc) -- one-time 64 K args table at construction
            args: vec![Args::ZERO; MEM_SIZE]
                .into_boxed_slice()
                .try_into()
                // detlint: allow(panic_path) -- boxed slice has exactly MEM_SIZE elements
                .expect("len"),
            dispatches: 0,
            misses: 0,
            invalidations: 0,
            flushes: 0,
        }
    }

    #[inline(always)]
    pub fn op(&self, addr: u16) -> Op {
        self.ops[addr as usize]
    }

    #[inline(always)]
    pub fn args(&self, addr: u16) -> Args {
        self.args[addr as usize]
    }

    /// Decodes the fetched `bytes` for `addr`, stores the slot, and returns
    /// its tag ([`Op::Illegal`] when the bytes do not decode).
    pub fn fill(&mut self, addr: u16, bytes: [u8; 4]) -> Op {
        self.misses += 1;
        let (op, args) = match Instruction::decode(bytes) {
            Some(i) => compile(i),
            None => (Op::Illegal, Args::ZERO),
        };
        self.ops[addr as usize] = op;
        self.args[addr as usize] = args;
        op
    }

    /// Re-colds every slot whose fetch window overlaps the `len` bytes
    /// written at `addr` (wrapping at the address-space edge, mirroring
    /// the wrapping instruction fetch).
    #[inline]
    pub fn invalidate(&mut self, addr: u16, len: u16) {
        let first = addr.wrapping_sub(INSTR_SIZE - 1);
        for i in 0..(INSTR_SIZE - 1 + len) {
            self.ops[first.wrapping_add(i) as usize] = Op::Cold;
        }
        self.invalidations += 1;
    }

    /// Re-colds the whole table (whole-image mutations: ROM load, snapshot
    /// restore).
    pub fn flush(&mut self) {
        self.ops.fill(Op::Cold);
        self.flushes += 1;
    }

    /// Folds one frame's dispatch count into the statistics; called once
    /// per `run_frame` so the hot loop carries no per-step counter.
    #[inline]
    pub fn note_dispatches(&mut self, n: u64) {
        self.dispatches += n;
    }

    pub fn stats(&self) -> InterpStats {
        InterpStats {
            hits: self.dispatches.saturating_sub(self.misses),
            misses: self.misses,
            invalidations: self.invalidations,
            flushes: self.flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Reg, Syscall};

    #[test]
    fn compile_hoists_operands() {
        let (op, args) = compile(Instruction::Ldw(Reg(3), Reg(7), 9));
        assert_eq!(op, Op::Ldw);
        assert_eq!((args.a, args.b, args.imm), (3, 7, 9));
        let (op, args) = compile(Instruction::Sys(Syscall::Rect));
        assert_eq!(op, Op::Sys);
        assert_eq!(args.a, Syscall::Rect as u8);
    }

    #[test]
    fn fill_caches_legal_and_illegal_encodings() {
        let mut c = DecodeCache::new();
        assert_eq!(c.op(0), Op::Cold);
        let bytes = Instruction::Ldi(Reg(2), 0xBEEF).encode();
        assert_eq!(c.fill(0, bytes), Op::Ldi);
        assert_eq!(c.op(0), Op::Ldi);
        assert_eq!(c.args(0).imm, 0xBEEF);
        assert_eq!(c.fill(4, [0xFF, 0, 0, 0]), Op::Illegal);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn invalidate_covers_every_overlapping_window() {
        let mut c = DecodeCache::new();
        let nop = Instruction::Nop.encode();
        for addr in 90..110u16 {
            c.fill(addr, nop);
        }
        // A one-byte store at 100 must re-cold starts 97..=100 only.
        c.invalidate(100, 1);
        for addr in 90..110u16 {
            let expect_cold = (97..=100).contains(&addr);
            assert_eq!(c.op(addr) == Op::Cold, expect_cold, "addr {addr}");
        }
        // A word store also covers the window of its second byte.
        c.invalidate(200, 2);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn invalidate_wraps_at_the_address_space_edge() {
        let mut c = DecodeCache::new();
        let nop = Instruction::Nop.encode();
        c.fill(0xFFFF, nop);
        c.fill(0x0001, nop);
        // A store at 0x0001 overlaps the window fetched at 0xFFFF
        // (0xFFFF, 0x0000, 0x0001, 0x0002 — the fetch wraps too).
        c.invalidate(0x0001, 1);
        assert_eq!(c.op(0xFFFF), Op::Cold);
        assert_eq!(c.op(0x0001), Op::Cold);
    }

    #[test]
    fn flush_colds_everything_and_counts() {
        let mut c = DecodeCache::new();
        c.fill(8, Instruction::Nop.encode());
        c.flush();
        assert_eq!(c.op(8), Op::Cold);
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn hit_rate_derivation() {
        let mut c = DecodeCache::new();
        c.fill(0, Instruction::Nop.encode());
        c.note_dispatches(100);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
        assert_eq!(s.hit_rate_milli(), 990);
        assert_eq!(InterpStats::default().hit_rate_milli(), 1000);
    }
}
