//! The predecoded instruction cache behind the interpreter fast path.
//!
//! The reference interpreter re-decodes the 4-byte instruction word at `pc`
//! on every step; under rollback netcode the same instructions are decoded
//! again on every resimulated frame. [`DecodeCache`] amortizes that work:
//! a dense table covering the whole 64 KiB address space holds one
//! pre-resolved entry per possible `pc`, filled lazily the first time an
//! address executes and dispatched from directly afterwards.
//!
//! On top of the single-slot tier sits a **superinstruction tier**: when a
//! cold fill decodes an instruction whose hottest dynamic successor
//! immediately follows it (pairs measured from real ROM traces — see
//! DESIGN.md §5d), the two are fused into one [`Op`] variant with both
//! operand sets hoisted into the widened [`Args`], and the interpreter
//! retires both instructions from a single dispatch.
//!
//! Correctness under self-modifying code rests on one invariant: **a slot
//! is warm only while the bytes it was decoded from are unchanged.** A
//! fused slot at `A` was decoded from the 8 bytes `A .. A+8`, so the CPU
//! routes every memory store through [`DecodeCache::invalidate`], which
//! re-colds exactly the slots whose (possibly fused) fetch window overlaps
//! the written bytes (`addr - 7 ..= addr + len - 1`, wrapping). Whole-image
//! mutations (ROM loads) flush the table. The cache is never serialized —
//! snapshots stay byte-identical with the reference interpreter, and a
//! restored machine simply re-warms.

use crate::cpu::MEM_SIZE;
use crate::isa::{Instruction, INSTR_SIZE};

/// Which interpreter loop [`crate::Cpu::run_frame`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// Dispatch from the predecoded instruction cache (the default).
    #[default]
    Predecoded,
    /// The original fetch–decode–execute loop, kept as the reference
    /// implementation the fast path is differentially tested against.
    Reference,
}

/// Cumulative decode-cache statistics since power-on.
///
/// These are observability data, not machine state: they are excluded from
/// serialization and state hashes, and both interpreter modes produce
/// byte-identical game state regardless of what they read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions dispatched from a warm cache slot.
    pub hits: u64,
    /// Instructions that needed a fresh decode (cold or invalidated slot).
    pub misses: u64,
    /// Memory stores that re-colded a window of slots.
    pub invalidations: u64,
    /// Whole-table flushes (image loads and snapshot restores).
    pub flushes: u64,
    /// Fused-pair dispatches: each retired **two** instructions from one
    /// warm superinstruction slot.
    pub fused_hits: u64,
}

impl InterpStats {
    /// Warm-dispatch rate in thousandths (992 = 99.2% of instructions
    /// skipped the decoder). Returns 1000 for an idle interpreter.
    pub fn hit_rate_milli(&self) -> u64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1000;
        }
        self.hits.saturating_mul(1000) / total
    }

    /// Share of retired instructions covered by fused-pair dispatches, in
    /// thousandths (600 = 60% of instructions retired two-at-a-time).
    /// Returns 0 for an idle interpreter.
    pub fn fusion_rate_milli(&self) -> u64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0;
        }
        // Each fused dispatch covers two of the retired instructions.
        (self.fused_hits.saturating_mul(2000) / total).min(1000)
    }
}

/// Dense micro-op tag: [`Instruction`] with the operands hoisted out, the
/// two cache sentinels, and the fused superinstruction tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Op {
    /// Slot has no valid decode (never filled, or invalidated).
    Cold,
    /// The bytes at this address do not decode; executing them faults.
    Illegal,
    Nop,
    Halt,
    Yield,
    Ldi,
    Mov,
    Add,
    Sub,
    Mul,
    Div,
    Modu,
    And,
    Or,
    Xor,
    Shli,
    Shri,
    Addi,
    Subi,
    Neg,
    Cmp,
    Cmpi,
    Jmp,
    Jz,
    Jnz,
    Jlt,
    Jge,
    Call,
    Ret,
    Ldw,
    Stw,
    Ldb,
    Stb,
    Push,
    Pop,
    In,
    Rnd,
    Sys,
    // --- fused superinstructions (pair frequencies in DESIGN.md §5d) ---
    /// `ldi a, imm; ldi c, imm2`
    LdiLdi,
    /// `ldi a, imm; ldw b, [c + imm2]`
    LdiLdw,
    /// `ldw a, [b + imm]; ldi c, imm2`
    LdwLdi,
    /// `ldi a, imm; sys c`
    LdiSys,
    /// `sys a; ldi c, imm2`
    SysLdi,
    /// `and a, b; cmpi c, imm2`
    AndCmpi,
    /// `cmpi a, imm; j<cond c> imm2` (cond: 0=jz 1=jnz 2=jlt 3=jge)
    CmpiJcc,
    /// `ldi a, imm; and b, c`
    LdiAnd,
    /// `mov a, b; ldi c, imm2`
    MovLdi,
    /// `ldw a, [b + imm]; cmpi c, imm2`
    LdwCmpi,
    /// `ldi a, imm; stw [b + imm2], c`
    LdiStw,
}

impl Op {
    /// `true` for superinstruction slots, which retire two instructions
    /// (and consume two cycles) per dispatch.
    #[inline(always)]
    pub fn is_fused(self) -> bool {
        self as u8 >= Op::LdiLdi as u8
    }
}

/// Branch-condition codes hoisted into [`Op::CmpiJcc`] slots.
pub(crate) mod cond {
    pub const JZ: u8 = 0;
    pub const JNZ: u8 = 1;
    pub const JLT: u8 = 2;
    pub const JGE: u8 = 3;
}

/// Pre-resolved operands for one slot: register indices / ports / syscall
/// numbers in `a`, `b`, and `c` (packed nibbles already split), immediates
/// or load-store offsets in `imm` and `imm2`. Single-instruction slots use
/// only `a`/`b`/`imm`; fused slots hoist the second constituent's operands
/// into `c`/`imm2` (per-variant layouts documented on [`Op`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Args {
    pub a: u8,
    pub b: u8,
    pub c: u8,
    pub imm: u16,
    pub imm2: u16,
}

impl Args {
    pub const ZERO: Args = Args {
        a: 0,
        b: 0,
        c: 0,
        imm: 0,
        imm2: 0,
    };
}

/// Lowers a decoded [`Instruction`] into its dispatch-table form. Legality
/// (register ranges, syscall numbers) was already established by
/// [`Instruction::decode`]; this is a pure re-layout.
pub(crate) fn compile(instr: Instruction) -> (Op, Args) {
    use Instruction as I;
    let z = Args::ZERO;
    match instr {
        I::Nop => (Op::Nop, z),
        I::Halt => (Op::Halt, z),
        I::Yield => (Op::Yield, z),
        I::Ldi(d, imm) => (Op::Ldi, Args { a: d.0, imm, ..z }),
        I::Mov(d, s) => (
            Op::Mov,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Add(d, s) => (
            Op::Add,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Sub(d, s) => (
            Op::Sub,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Mul(d, s) => (
            Op::Mul,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Div(d, s) => (
            Op::Div,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Modu(d, s) => (
            Op::Modu,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::And(d, s) => (
            Op::And,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Or(d, s) => (
            Op::Or,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Xor(d, s) => (
            Op::Xor,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Shli(d, imm) => (Op::Shli, Args { a: d.0, imm, ..z }),
        I::Shri(d, imm) => (Op::Shri, Args { a: d.0, imm, ..z }),
        I::Addi(d, imm) => (Op::Addi, Args { a: d.0, imm, ..z }),
        I::Subi(d, imm) => (Op::Subi, Args { a: d.0, imm, ..z }),
        I::Neg(d) => (Op::Neg, Args { a: d.0, ..z }),
        I::Cmp(d, s) => (
            Op::Cmp,
            Args {
                a: d.0,
                b: s.0,
                ..z
            },
        ),
        I::Cmpi(d, imm) => (Op::Cmpi, Args { a: d.0, imm, ..z }),
        I::Jmp(t) => (Op::Jmp, Args { imm: t, ..z }),
        I::Jz(t) => (Op::Jz, Args { imm: t, ..z }),
        I::Jnz(t) => (Op::Jnz, Args { imm: t, ..z }),
        I::Jlt(t) => (Op::Jlt, Args { imm: t, ..z }),
        I::Jge(t) => (Op::Jge, Args { imm: t, ..z }),
        I::Call(t) => (Op::Call, Args { imm: t, ..z }),
        I::Ret => (Op::Ret, z),
        I::Ldw(d, s, off) => (
            Op::Ldw,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
                ..z
            },
        ),
        I::Stw(d, s, off) => (
            Op::Stw,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
                ..z
            },
        ),
        I::Ldb(d, s, off) => (
            Op::Ldb,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
                ..z
            },
        ),
        I::Stb(d, s, off) => (
            Op::Stb,
            Args {
                a: d.0,
                b: s.0,
                imm: off as u16,
                ..z
            },
        ),
        I::Push(s) => (Op::Push, Args { a: s.0, ..z }),
        I::Pop(d) => (Op::Pop, Args { a: d.0, ..z }),
        I::In(d, port) => (
            Op::In,
            Args {
                a: d.0,
                b: port,
                ..z
            },
        ),
        I::Rnd(d) => (Op::Rnd, Args { a: d.0, ..z }),
        I::Sys(n) => (Op::Sys, Args { a: n as u8, ..z }),
    }
}

/// Peephole-matches an adjacent instruction pair against the fused
/// templates. Only instructions that fall through without touching memory
/// or control flow may lead a pair (so the second constituent's bytes
/// cannot change between the fused decode and its execution); the second
/// constituent may store or branch because its own side effects happen
/// after both hoisted operand sets were consumed.
pub(crate) fn fuse(first: Instruction, second: Instruction) -> Option<(Op, Args)> {
    use Instruction as I;
    let z = Args::ZERO;
    let pair = match (first, second) {
        (I::Ldi(d, imm), I::Ldi(d2, imm2)) => (
            Op::LdiLdi,
            Args {
                a: d.0,
                c: d2.0,
                imm,
                imm2,
                ..z
            },
        ),
        (I::Ldi(d, imm), I::Ldw(d2, s2, off)) => (
            Op::LdiLdw,
            Args {
                a: d.0,
                b: d2.0,
                c: s2.0,
                imm,
                imm2: off as u16,
            },
        ),
        (I::Ldw(d, s, off), I::Ldi(d2, imm2)) => (
            Op::LdwLdi,
            Args {
                a: d.0,
                b: s.0,
                c: d2.0,
                imm: off as u16,
                imm2,
            },
        ),
        (I::Ldi(d, imm), I::Sys(n)) => (
            Op::LdiSys,
            Args {
                a: d.0,
                c: n as u8,
                imm,
                ..z
            },
        ),
        (I::Sys(n), I::Ldi(d2, imm2)) => (
            Op::SysLdi,
            Args {
                a: n as u8,
                c: d2.0,
                imm2,
                ..z
            },
        ),
        (I::And(d, s), I::Cmpi(d2, imm2)) => (
            Op::AndCmpi,
            Args {
                a: d.0,
                b: s.0,
                c: d2.0,
                imm2,
                ..z
            },
        ),
        (I::Cmpi(d, imm), I::Jz(t)) => cmpi_jcc(d.0, imm, cond::JZ, t),
        (I::Cmpi(d, imm), I::Jnz(t)) => cmpi_jcc(d.0, imm, cond::JNZ, t),
        (I::Cmpi(d, imm), I::Jlt(t)) => cmpi_jcc(d.0, imm, cond::JLT, t),
        (I::Cmpi(d, imm), I::Jge(t)) => cmpi_jcc(d.0, imm, cond::JGE, t),
        (I::Ldi(d, imm), I::And(d2, s2)) => (
            Op::LdiAnd,
            Args {
                a: d.0,
                b: d2.0,
                c: s2.0,
                imm,
                ..z
            },
        ),
        (I::Mov(d, s), I::Ldi(d2, imm2)) => (
            Op::MovLdi,
            Args {
                a: d.0,
                b: s.0,
                c: d2.0,
                imm2,
                ..z
            },
        ),
        (I::Ldw(d, s, off), I::Cmpi(d2, imm2)) => (
            Op::LdwCmpi,
            Args {
                a: d.0,
                b: s.0,
                c: d2.0,
                imm: off as u16,
                imm2,
            },
        ),
        (I::Ldi(d, imm), I::Stw(d2, s2, off)) => (
            Op::LdiStw,
            Args {
                a: d.0,
                b: d2.0,
                c: s2.0,
                imm,
                imm2: off as u16,
            },
        ),
        _ => return None,
    };
    Some(pair)
}

fn cmpi_jcc(reg: u8, imm: u16, cc: u8, target: u16) -> (Op, Args) {
    (
        Op::CmpiJcc,
        Args {
            a: reg,
            c: cc,
            imm,
            imm2: target,
            ..Args::ZERO
        },
    )
}

/// A fused slot at `A` depends on the two instruction words `A .. A+8`; a
/// store must therefore re-cold every slot start within `2*INSTR_SIZE - 1`
/// bytes behind it.
const FUSE_WINDOW: u16 = 2 * INSTR_SIZE - 1;

/// One pre-resolved dispatch slot per address in the 64 KiB space.
///
/// Tags and operands live in parallel arrays: the tag array is one byte
/// per slot so a whole-table flush is a single `memset`, and a store's
/// window invalidation touches only tag bytes.
#[derive(Clone)]
pub(crate) struct DecodeCache {
    ops: Box<[Op; MEM_SIZE]>,
    args: Box<[Args; MEM_SIZE]>,
    /// Peephole-fuse adjacent pairs on fill (on by default; the bench
    /// harness turns it off to isolate the fusion win).
    fusion: bool,
    /// Total instructions retired by the fast path (misses included);
    /// hits are derived.
    dispatches: u64,
    misses: u64,
    invalidations: u64,
    flushes: u64,
    fused: u64,
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl DecodeCache {
    /// An entirely cold table with pair fusion enabled.
    pub fn new() -> DecodeCache {
        DecodeCache {
            // detlint: allow(hot_alloc) -- one-time 64 K decode table at construction
            ops: vec![Op::Cold; MEM_SIZE]
                .into_boxed_slice()
                .try_into()
                // detlint: allow(panic_path) -- boxed slice has exactly MEM_SIZE elements
                .expect("len"),
            // detlint: allow(hot_alloc) -- one-time 64 K args table at construction
            args: vec![Args::ZERO; MEM_SIZE]
                .into_boxed_slice()
                .try_into()
                // detlint: allow(panic_path) -- boxed slice has exactly MEM_SIZE elements
                .expect("len"),
            fusion: true,
            dispatches: 0,
            misses: 0,
            invalidations: 0,
            flushes: 0,
            fused: 0,
        }
    }

    /// Enables or disables pair fusion for future fills and flushes the
    /// table so already-fused slots cannot linger.
    pub fn set_fusion(&mut self, enabled: bool) {
        if self.fusion != enabled {
            self.fusion = enabled;
            self.flush();
        }
    }

    #[inline(always)]
    pub fn op(&self, addr: u16) -> Op {
        self.ops[addr as usize]
    }

    #[inline(always)]
    pub fn args(&self, addr: u16) -> Args {
        self.args[addr as usize]
    }

    /// Decodes the instruction word at `addr` from `mem`, peephole-fusing
    /// it with its fall-through successor when the pair matches a fused
    /// template, stores the slot, and returns its tag ([`Op::Illegal`]
    /// when the bytes do not decode). Fetches wrap at the address-space
    /// edge, mirroring the interpreter's wrapping instruction fetch.
    pub fn fill(&mut self, addr: u16, mem: &[u8; MEM_SIZE]) -> Op {
        self.misses += 1;
        let word = |at: u16| {
            [
                mem[at as usize],
                mem[at.wrapping_add(1) as usize],
                mem[at.wrapping_add(2) as usize],
                mem[at.wrapping_add(3) as usize],
            ]
        };
        let (op, args) = match Instruction::decode(word(addr)) {
            Some(first) => {
                let fused = if self.fusion {
                    Instruction::decode(word(addr.wrapping_add(INSTR_SIZE)))
                        .and_then(|second| fuse(first, second))
                } else {
                    None
                };
                fused.unwrap_or_else(|| compile(first))
            }
            None => (Op::Illegal, Args::ZERO),
        };
        self.ops[addr as usize] = op;
        self.args[addr as usize] = args;
        op
    }

    /// Re-colds every slot whose fetch window overlaps the `len` bytes
    /// written at `addr` (wrapping at the address-space edge, mirroring
    /// the wrapping instruction fetch). The window covers fused slots,
    /// whose decode spans two instruction words.
    #[inline]
    pub fn invalidate(&mut self, addr: u16, len: u16) {
        let first = addr.wrapping_sub(FUSE_WINDOW);
        for i in 0..(FUSE_WINDOW + len) {
            self.ops[first.wrapping_add(i) as usize] = Op::Cold;
        }
        self.invalidations += 1;
    }

    /// Re-colds the whole table (whole-image mutations: ROM load, fusion
    /// toggles).
    pub fn flush(&mut self) {
        self.ops.fill(Op::Cold);
        self.flushes += 1;
    }

    /// Folds one frame's retired-instruction count into the statistics;
    /// called once per `run_frame` so the hot loop carries no per-step
    /// counter.
    #[inline]
    pub fn note_dispatches(&mut self, n: u64) {
        self.dispatches += n;
    }

    /// Folds one frame's fused-pair dispatch count into the statistics.
    #[inline]
    pub fn note_fused(&mut self, n: u64) {
        self.fused += n;
    }

    pub fn stats(&self) -> InterpStats {
        InterpStats {
            hits: self.dispatches.saturating_sub(self.misses),
            misses: self.misses,
            invalidations: self.invalidations,
            flushes: self.flushes,
            fused_hits: self.fused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Reg, Syscall};

    fn image(instrs: &[Instruction]) -> Box<[u8; MEM_SIZE]> {
        let mut mem: Box<[u8; MEM_SIZE]> =
            vec![0u8; MEM_SIZE].into_boxed_slice().try_into().unwrap();
        for (i, ins) in instrs.iter().enumerate() {
            mem[i * 4..i * 4 + 4].copy_from_slice(&ins.encode());
        }
        mem
    }

    #[test]
    fn compile_hoists_operands() {
        let (op, args) = compile(Instruction::Ldw(Reg(3), Reg(7), 9));
        assert_eq!(op, Op::Ldw);
        assert_eq!((args.a, args.b, args.imm), (3, 7, 9));
        let (op, args) = compile(Instruction::Sys(Syscall::Rect));
        assert_eq!(op, Op::Sys);
        assert_eq!(args.a, Syscall::Rect as u8);
    }

    #[test]
    fn fill_caches_legal_and_illegal_encodings() {
        let mut c = DecodeCache::new();
        let mem = image(&[Instruction::Ldi(Reg(2), 0xBEEF)]);
        assert_eq!(c.op(0), Op::Cold);
        // The word after the ldi is zero-filled (nop), so the slot fuses?
        // No: ldi+nop is not a template, so the slot stays a plain Ldi.
        assert_eq!(c.fill(0, &mem), Op::Ldi);
        assert_eq!(c.op(0), Op::Ldi);
        assert_eq!(c.args(0).imm, 0xBEEF);
        let mut bad = image(&[]);
        bad[4] = 0xFF;
        assert_eq!(c.fill(4, &bad), Op::Illegal);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fill_fuses_hot_pairs_and_hoists_both_operand_sets() {
        let mut c = DecodeCache::new();
        let mem = image(&[
            Instruction::Ldi(Reg(1), 0x1234), // 0x00 — fuses with the next ldi
            Instruction::Ldi(Reg(2), 0x5678), // 0x04 — fuses with the ldw
            Instruction::Ldw(Reg(3), Reg(2), 6), // 0x08
            Instruction::Cmpi(Reg(3), 7),     // 0x0C — fuses with the jz
            Instruction::Jz(0x40),            // 0x10
        ]);
        assert_eq!(c.fill(0x00, &mem), Op::LdiLdi);
        let a = c.args(0x00);
        assert_eq!((a.a, a.imm, a.c, a.imm2), (1, 0x1234, 2, 0x5678));
        assert_eq!(c.fill(0x04, &mem), Op::LdiLdw);
        let a = c.args(0x04);
        assert_eq!((a.a, a.imm, a.b, a.c, a.imm2), (2, 0x5678, 3, 2, 6));
        assert_eq!(c.fill(0x0C, &mem), Op::CmpiJcc);
        let a = c.args(0x0C);
        assert_eq!((a.a, a.imm, a.c, a.imm2), (3, 7, cond::JZ, 0x40));
        // Mid-pair entry gets its own independent slot.
        assert_eq!(c.fill(0x10, &mem), Op::Jz);
    }

    #[test]
    fn stores_and_branch_leads_never_fuse_as_heads() {
        let mut c = DecodeCache::new();
        let mem = image(&[
            Instruction::Stw(Reg(1), Reg(2), 0), // store head: must not fuse
            Instruction::Ldi(Reg(3), 9),
            Instruction::Jmp(0), // branch head: must not fuse
            Instruction::Ldi(Reg(4), 9),
        ]);
        assert_eq!(c.fill(0x00, &mem), Op::Stw);
        assert_eq!(c.fill(0x08, &mem), Op::Jmp);
    }

    #[test]
    fn fusion_can_be_disabled_for_measurement() {
        let mut c = DecodeCache::new();
        let mem = image(&[Instruction::Ldi(Reg(1), 1), Instruction::Ldi(Reg(2), 2)]);
        c.set_fusion(false);
        assert_eq!(c.fill(0, &mem), Op::Ldi);
        c.set_fusion(true); // flushes
        assert_eq!(c.op(0), Op::Cold);
        assert_eq!(c.fill(0, &mem), Op::LdiLdi);
        assert!(c.stats().flushes >= 2, "toggling fusion flushes");
    }

    #[test]
    fn invalidate_covers_every_overlapping_window() {
        let mut c = DecodeCache::new();
        let mem = image(&[Instruction::Nop; 64]);
        for addr in 80..120u16 {
            c.fill(addr, &mem);
        }
        // A one-byte store at 100 must re-cold starts 93..=100 only: a
        // fused slot at 93 decodes bytes 93..=100, so its start is the
        // earliest that can overlap the written byte.
        c.invalidate(100, 1);
        for addr in 80..120u16 {
            let expect_cold = (93..=100).contains(&addr);
            assert_eq!(c.op(addr) == Op::Cold, expect_cold, "addr {addr}");
        }
        // A word store also covers the window of its second byte.
        c.invalidate(200, 2);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn invalidate_wraps_at_the_address_space_edge() {
        let mut c = DecodeCache::new();
        let mem = image(&[]);
        c.fill(0xFFFA, &mem);
        c.fill(0x0001, &mem);
        // A store at 0x0001 overlaps the fused window fetched at 0xFFFA
        // (its 8 bytes are 0xFFFA..=0x0001 — the fetch wraps too).
        c.invalidate(0x0001, 1);
        assert_eq!(c.op(0xFFFA), Op::Cold);
        assert_eq!(c.op(0x0001), Op::Cold);
        // One byte further back is outside the window and stays warm.
        c.fill(0xFFF9, &mem);
        c.invalidate(0x0001, 1);
        assert_ne!(c.op(0xFFF9), Op::Cold);
    }

    #[test]
    fn flush_colds_everything_and_counts() {
        let mut c = DecodeCache::new();
        let mem = image(&[Instruction::Nop, Instruction::Nop, Instruction::Nop]);
        c.fill(8, &mem);
        c.flush();
        assert_eq!(c.op(8), Op::Cold);
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn hit_rate_and_fusion_rate_derivation() {
        let mut c = DecodeCache::new();
        let mem = image(&[Instruction::Nop]);
        c.fill(0, &mem);
        c.note_dispatches(100);
        c.note_fused(20);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
        assert_eq!(s.hit_rate_milli(), 990);
        // 20 fused dispatches retired 40 of the 100 instructions.
        assert_eq!(s.fusion_rate_milli(), 400);
        assert_eq!(InterpStats::default().hit_rate_milli(), 1000);
        assert_eq!(InterpStats::default().fusion_rate_milli(), 0);
    }

    #[test]
    fn fused_ops_are_recognized() {
        assert!(Op::LdiLdi.is_fused());
        assert!(Op::LdiStw.is_fused());
        assert!(Op::CmpiJcc.is_fused());
        assert!(!Op::Ldi.is_fused());
        assert!(!Op::Cold.is_fused());
        assert!(!Op::Sys.is_fused());
    }
}
