//! Game cartridge images for the coplay console.
//!
//! A [`Rom`] is what the paper calls the *game image*: both players must
//! load the identical image so the replicas share an initial state. The
//! session handshake compares [`Rom::content_hash`] across sites before
//! starting (§3.1: "we replicate the game image to ensure that the VMs start
//! from the same initial state").

use std::error::Error;
use std::fmt;

use crate::hash::fnv1a;

/// Magic bytes prefixing a serialized ROM.
const MAGIC: &[u8; 6] = b"CPROM1";

/// A cartridge: metadata plus the memory image loaded at address 0.
///
/// # Examples
///
/// ```
/// use coplay_vm::Rom;
///
/// let rom = Rom::builder("Demo")
///     .players(2)
///     .seed(7)
///     .image(vec![0x02, 0, 0, 0]) // yield
///     .build();
/// let bytes = rom.to_bytes();
/// let back = Rom::from_bytes(&bytes)?;
/// assert_eq!(back.content_hash(), rom.content_hash());
/// # Ok::<(), coplay_vm::RomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rom {
    title: String,
    players: u8,
    cfps: u32,
    seed: u32,
    entry: u16,
    image: Vec<u8>,
    /// Digest of the serialized image, computed once at construction.
    /// Snapshot capture, restore validation, and per-frame state hashing
    /// all stamp it, so recomputing on demand (a full re-serialize plus a
    /// 64 KiB hash) would put microseconds on the checkpoint hot path.
    content_hash: u64,
}

/// Builder for [`Rom`] values.
#[derive(Debug, Clone)]
pub struct RomBuilder {
    rom: Rom,
}

impl Rom {
    /// Starts building a ROM titled `title`.
    pub fn builder(title: impl Into<String>) -> RomBuilder {
        RomBuilder {
            rom: Rom {
                title: title.into(),
                players: 2,
                cfps: 60,
                seed: 0,
                entry: 0,
                image: Vec::new(),
                content_hash: 0,
            },
        }
    }

    /// The game's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of player slots the game reads.
    pub fn players(&self) -> u8 {
        self.players
    }

    /// The frame rate the game is authored for.
    pub fn cfps(&self) -> u32 {
        self.cfps
    }

    /// Seed for the console's deterministic RNG.
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// Initial program counter.
    pub fn entry(&self) -> u16 {
        self.entry
    }

    /// The memory image loaded at address 0.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// A digest covering every byte that affects execution. Equal hashes ⇒
    /// identical initial machine states. Precomputed at construction, so
    /// calling this is free.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Recomputes [`Rom::content_hash`] from the current field values.
    /// Must run before the hash is first observed; the serialized form
    /// never includes the cached digest, so this is self-consistent.
    fn seal(mut self) -> Rom {
        self.content_hash = fnv1a(&self.to_bytes());
        self
    }

    /// Serializes the ROM for distribution.
    pub fn to_bytes(&self) -> Vec<u8> {
        let title = self.title.as_bytes();
        let mut out = Vec::with_capacity(MAGIC.len() + 16 + title.len() + self.image.len());
        out.extend_from_slice(MAGIC);
        out.push(self.players);
        out.extend_from_slice(&self.cfps.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&(title.len() as u16).to_le_bytes());
        out.extend_from_slice(title);
        out.extend_from_slice(&(self.image.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.image);
        out
    }

    /// Parses a ROM serialized by [`Rom::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`RomError`] on bad magic, truncation, or oversized images.
    pub fn from_bytes(bytes: &[u8]) -> Result<Rom, RomError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(RomError::BadMagic);
        }
        let players = r.u8()?;
        let cfps = r.u32()?;
        let seed = r.u32()?;
        let entry = r.u16()?;
        let title_len = r.u16()? as usize;
        let title =
            String::from_utf8(r.take(title_len)?.to_vec()).map_err(|_| RomError::BadTitle)?;
        let image_len = r.u32()? as usize;
        if image_len > crate::cpu::MEM_SIZE {
            return Err(RomError::ImageTooLarge(image_len));
        }
        let image = r.take(image_len)?.to_vec();
        Ok(Rom {
            title,
            players,
            cfps,
            seed,
            entry,
            image,
            content_hash: 0,
        }
        .seal())
    }
}

impl fmt::Display for Rom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}P, {}fps, {} bytes]",
            self.title,
            self.players,
            self.cfps,
            self.image.len()
        )
    }
}

impl RomBuilder {
    /// Sets the number of players (default 2).
    pub fn players(mut self, players: u8) -> Self {
        self.rom.players = players;
        self
    }

    /// Sets the frame rate (default 60).
    pub fn cfps(mut self, cfps: u32) -> Self {
        self.rom.cfps = cfps.max(1);
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u32) -> Self {
        self.rom.seed = seed;
        self
    }

    /// Sets the entry point (default 0).
    pub fn entry(mut self, entry: u16) -> Self {
        self.rom.entry = entry;
        self
    }

    /// Sets the memory image.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the console's 64 KiB address space.
    pub fn image(mut self, image: Vec<u8>) -> Self {
        assert!(
            image.len() <= crate::cpu::MEM_SIZE,
            "image exceeds 64 KiB address space"
        );
        self.rom.image = image;
        self
    }

    /// Finishes the ROM.
    pub fn build(self) -> Rom {
        self.rom.seal()
    }
}

/// Errors parsing a serialized [`Rom`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RomError {
    /// Missing or wrong magic prefix.
    BadMagic,
    /// Input ended before the advertised field lengths.
    Truncated,
    /// Title bytes are not valid UTF-8.
    BadTitle,
    /// Image length exceeds the 64 KiB address space.
    ImageTooLarge(usize),
}

impl fmt::Display for RomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RomError::BadMagic => write!(f, "not a coplay ROM (bad magic)"),
            RomError::Truncated => write!(f, "ROM data truncated"),
            RomError::BadTitle => write!(f, "ROM title is not valid UTF-8"),
            RomError::ImageTooLarge(n) => write!(f, "ROM image of {n} bytes exceeds 64 KiB"),
        }
    }
}

impl Error for RomError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RomError> {
        if self.pos + n > self.bytes.len() {
            return Err(RomError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, RomError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, RomError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, RomError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rom {
        Rom::builder("Space Duel")
            .players(2)
            .cfps(60)
            .seed(0xDEAD)
            .entry(0x0010)
            .image(vec![1, 2, 3, 4, 5])
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let r = sample();
        assert_eq!(r.title(), "Space Duel");
        assert_eq!(r.players(), 2);
        assert_eq!(r.cfps(), 60);
        assert_eq!(r.seed(), 0xDEAD);
        assert_eq!(r.entry(), 0x0010);
        assert_eq!(r.image(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn serialize_roundtrip() {
        let r = sample();
        assert_eq!(Rom::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn hash_is_content_sensitive() {
        let a = sample();
        let b = Rom::builder("Space Duel")
            .players(2)
            .cfps(60)
            .seed(0xDEAD)
            .entry(0x0010)
            .image(vec![1, 2, 3, 4, 6])
            .build();
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), sample().content_hash());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Rom::from_bytes(b"NOTROM_xxxx"), Err(RomError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(Rom::from_bytes(&bytes), Err(RomError::Truncated));
    }

    #[test]
    fn invalid_utf8_title_rejected() {
        let mut bytes = sample().to_bytes();
        // Title begins after magic(6)+players(1)+cfps(4)+seed(4)+entry(2)+len(2)=19.
        bytes[19] = 0xFF;
        bytes[20] = 0xFE;
        assert_eq!(Rom::from_bytes(&bytes), Err(RomError::BadTitle));
    }

    #[test]
    #[should_panic(expected = "64 KiB")]
    fn oversized_image_panics_in_builder() {
        let _ = Rom::builder("big").image(vec![0; 0x10001]);
    }

    #[test]
    fn display_format() {
        assert_eq!(sample().to_string(), "Space Duel [2P, 60fps, 5 bytes]");
    }

    #[test]
    fn errors_display() {
        assert!(RomError::Truncated.to_string().contains("truncated"));
        assert!(RomError::ImageTooLarge(99999).to_string().contains("99999"));
    }
}
