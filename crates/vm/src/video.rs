//! The virtual video device: an indexed-colour framebuffer.
//!
//! Legacy arcade boards render into small palettized framebuffers; the VM
//! "translates [game outputs] into target platform dependent outputs" (§2).
//! [`FrameBuffer`] is the source-platform output; translation targets here
//! are raw RGB ([`FrameBuffer::to_rgb`]) and terminal art
//! ([`FrameBuffer::to_ascii`]) for the examples.

use crate::dirty::{DirtyPages, PAGE_SIZE};
use std::fmt;

/// Default framebuffer width in pixels.
pub const WIDTH: usize = 160;
/// Default framebuffer height in pixels.
pub const HEIGHT: usize = 120;

/// The 16-colour master palette (RGB), loosely the classic EGA ramp.
pub const PALETTE: [(u8, u8, u8); 16] = [
    (0x00, 0x00, 0x00), // 0 black
    (0x00, 0x00, 0xAA), // 1 blue
    (0x00, 0xAA, 0x00), // 2 green
    (0x00, 0xAA, 0xAA), // 3 cyan
    (0xAA, 0x00, 0x00), // 4 red
    (0xAA, 0x00, 0xAA), // 5 magenta
    (0xAA, 0x55, 0x00), // 6 brown
    (0xAA, 0xAA, 0xAA), // 7 light grey
    (0x55, 0x55, 0x55), // 8 dark grey
    (0x55, 0x55, 0xFF), // 9 bright blue
    (0x55, 0xFF, 0x55), // 10 bright green
    (0x55, 0xFF, 0xFF), // 11 bright cyan
    (0xFF, 0x55, 0x55), // 12 bright red
    (0xFF, 0x55, 0xFF), // 13 bright magenta
    (0xFF, 0xFF, 0x55), // 14 yellow
    (0xFF, 0xFF, 0xFF), // 15 white
];

/// A 4-bit indexed colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(pub u8);

impl Color {
    /// Palette index 0.
    pub const BLACK: Color = Color(0);
    /// Palette index 15.
    pub const WHITE: Color = Color(15);

    fn index(self) -> u8 {
        self.0 & 0x0F
    }
}

/// A palettized framebuffer with simple 2-D drawing primitives.
///
/// # Examples
///
/// ```
/// use coplay_vm::{Color, FrameBuffer};
///
/// let mut fb = FrameBuffer::new(32, 16);
/// fb.fill_rect(4, 4, 8, 4, Color(12));
/// assert_eq!(fb.pixel(5, 5), Color(12));
/// assert_eq!(fb.pixel(0, 0), Color::BLACK);
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuffer {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
    /// Pages of `pixels` that may differ from the last snapshot capture.
    /// Maintained by [`FrameBuffer::reconcile_dirty`], not by the drawing
    /// primitives: games clear and redraw the whole screen every frame,
    /// so draw-time marking would report every transiently-flipped page
    /// (a static sprite erased by `cls` and redrawn identically) as
    /// dirty. Comparing the finished frame against `shadow` instead
    /// yields the true net change.
    dirty: DirtyPages,
    /// Copy of `pixels` as of the last reconcile — the reference the next
    /// [`FrameBuffer::reconcile_dirty`] diffs against. Empty while dirty
    /// tracking is off: native games never serialize their framebuffer,
    /// so they skip the reconcile pass and `dirty` stays saturated
    /// (everything may differ — the only safe claim when writes go
    /// unobserved). The `Console` enables tracking because its snapshots
    /// embed the surface.
    shadow: Vec<u8>,
}

/// Equality compares only the visible surface (dimensions and pixels).
/// The dirty accumulator is capture bookkeeping: two buffers with
/// identical contents but different snapshot histories are still equal.
impl PartialEq for FrameBuffer {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.height == other.height && self.pixels == other.pixels
    }
}

impl Eq for FrameBuffer {}

impl FrameBuffer {
    /// Creates a cleared (black) buffer of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> FrameBuffer {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        FrameBuffer {
            width,
            height,
            pixels: vec![0; width * height],
            // No snapshot has seen this buffer yet.
            dirty: DirtyPages::all_dirty(width * height),
            shadow: Vec::new(),
        }
    }

    /// `true` while the dirty accumulator is maintained (a shadow copy
    /// exists to diff against).
    fn tracking(&self) -> bool {
        !self.shadow.is_empty()
    }

    /// Creates the standard 160×120 arcade buffer.
    pub fn standard() -> FrameBuffer {
        FrameBuffer::new(WIDTH, HEIGHT)
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw palette indices, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Overwrites the whole buffer from raw palette indices, masking each
    /// to 4 bits (the same normalization [`FrameBuffer::set_pixel`]
    /// applies). This is the snapshot-restore fast path: one linear pass
    /// instead of per-pixel coordinate arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `width * height` bytes.
    pub fn load_pixels(&mut self, data: &[u8]) {
        assert_eq!(data.len(), self.pixels.len(), "pixel payload size");
        self.pixels.copy_from_slice(data);
        for p in &mut self.pixels {
            *p &= 0x0F;
        }
        // Pages the load actually changed get marked by the diff against
        // the shadow, so a restore that lands on identical video costs no
        // future capture bandwidth.
        self.reconcile_dirty();
    }

    /// The colour at `(x, y)`; out-of-bounds reads are black.
    pub fn pixel(&self, x: i32, y: i32) -> Color {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return Color::BLACK;
        }
        Color(self.pixels[y as usize * self.width + x as usize])
    }

    /// Sets one pixel; out-of-bounds writes are clipped away.
    pub fn set_pixel(&mut self, x: i32, y: i32, color: Color) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let i = y as usize * self.width + x as usize;
        self.pixels[i] = color.index();
    }

    /// Fills the whole buffer with `color`.
    pub fn clear(&mut self, color: Color) {
        self.pixels.fill(color.index());
    }

    /// Fills the axis-aligned rectangle, clipping at the edges.
    pub fn fill_rect(&mut self, x: i32, y: i32, w: i32, h: i32, color: Color) {
        let x0 = x.max(0) as usize;
        let y0 = y.max(0) as usize;
        let x1 = (x + w).min(self.width as i32).max(0) as usize;
        let y1 = (y + h).min(self.height as i32).max(0) as usize;
        if x0 >= x1 {
            return;
        }
        let c = color.index();
        for yy in y0..y1 {
            let row = yy * self.width;
            self.pixels[row + x0..row + x1].fill(c);
        }
    }

    /// Draws a 1-pixel horizontal line.
    pub fn hline(&mut self, x: i32, y: i32, w: i32, color: Color) {
        self.fill_rect(x, y, w, 1, color);
    }

    /// Draws a 1-pixel vertical line.
    pub fn vline(&mut self, x: i32, y: i32, h: i32, color: Color) {
        self.fill_rect(x, y, 1, h, color);
    }

    /// Blits a `w`-wide sprite of palette indices; index 0 is transparent.
    pub fn blit(&mut self, x: i32, y: i32, w: usize, data: &[u8]) {
        for (i, &px) in data.iter().enumerate() {
            if px & 0x0F != 0 {
                let dx = (i % w) as i32;
                let dy = (i / w) as i32;
                self.set_pixel(x + dx, y + dy, Color(px));
            }
        }
    }

    /// Draws a decimal number with a tiny 3×5 digit font (for scores).
    pub fn draw_number(&mut self, x: i32, y: i32, value: u32, color: Color) {
        const DIGITS: [u16; 10] = [
            0b111_101_101_101_111, // 0
            0b010_110_010_010_111, // 1
            0b111_001_111_100_111, // 2
            0b111_001_111_001_111, // 3
            0b101_101_111_001_001, // 4
            0b111_100_111_001_111, // 5
            0b111_100_111_101_111, // 6
            0b111_001_010_010_010, // 7
            0b111_101_111_101_111, // 8
            0b111_101_111_001_111, // 9
        ];
        // u32 has at most 10 decimal digits; a stack buffer keeps this
        // allocation-free (scores are redrawn every frame).
        let mut digits = [0u32; 10];
        let mut count = 0;
        let mut rest = value;
        loop {
            digits[count] = rest % 10;
            count += 1;
            rest /= 10;
            if rest == 0 {
                break;
            }
        }
        for i in 0..count {
            let glyph = DIGITS[digits[count - 1 - i] as usize];
            for row in 0..5 {
                for col in 0..3 {
                    let bit = 14 - (row * 3 + col);
                    if glyph >> bit & 1 == 1 {
                        self.set_pixel(x + (i as i32) * 4 + col, y + row, color);
                    }
                }
            }
        }
    }

    /// Translates to packed RGB bytes (3 per pixel) via [`PALETTE`].
    pub fn to_rgb(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3);
        for &p in &self.pixels {
            let (r, g, b) = PALETTE[(p & 0x0F) as usize];
            out.extend_from_slice(&[r, g, b]);
        }
        out
    }

    /// Renders the buffer as ASCII art, down-sampling by `step` in both
    /// axes — the "target platform" of terminal examples.
    pub fn to_ascii(&self, step: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@&XNWM?";
        let step = step.max(1);
        let mut s = String::with_capacity((self.width / step + 1) * (self.height / step));
        for y in (0..self.height).step_by(step) {
            for x in (0..self.width).step_by(step) {
                let p = self.pixels[y * self.width + x] & 0x0F;
                s.push(RAMP[p as usize] as char);
            }
            s.push('\n');
        }
        s
    }

    /// FNV-1a hash of the pixel contents (used in state hashing and tests).
    pub fn content_hash(&self) -> u64 {
        crate::hash::fnv1a(&self.pixels)
    }

    /// Turns on dirty-page maintenance: allocates the shadow copy that
    /// [`FrameBuffer::reconcile_dirty`] diffs against. Until this is
    /// called the accumulator stays saturated, which is the only sound
    /// answer when writes go unobserved.
    pub(crate) fn enable_dirty_tracking(&mut self) {
        if self.shadow.is_empty() {
            self.shadow = self.pixels.clone();
        }
    }

    /// Diffs the surface against the shadow copy, marking pages whose
    /// content actually changed and syncing the shadow. The `Console`
    /// calls this once at the end of every presented frame, so a full
    /// clear-and-redraw cycle that reproduces the previous frame's pixels
    /// (static sprites, backgrounds, a `cls` that erases and a sprite
    /// pass that repaints) contributes zero dirty pages.
    ///
    /// Two-level diff, like the CPU's memory restore: 4 KiB super-chunks
    /// compared with one wide memcmp each, and only a differing
    /// super-chunk is re-scanned at page granularity — the all-equal fast
    /// path dominates real frames. No-op while tracking is off.
    pub(crate) fn reconcile_dirty(&mut self) {
        if self.shadow.is_empty() {
            return;
        }
        const SUPER: usize = 4096; // multiple of PAGE_SIZE
        let n = self.pixels.len();
        let mut off = 0;
        while off < n {
            let sup_end = (off + SUPER).min(n);
            if self.pixels[off..sup_end] == self.shadow[off..sup_end] {
                off = sup_end;
                continue;
            }
            while off < sup_end {
                let end = (off + PAGE_SIZE).min(sup_end);
                if self.pixels[off..end] != self.shadow[off..end] {
                    self.shadow[off..end].copy_from_slice(&self.pixels[off..end]);
                    self.dirty.mark_range(off, end - off);
                }
                off = end;
            }
        }
    }

    /// The accumulated dirty bitmap over `pixels` (as of the last
    /// reconcile).
    pub(crate) fn dirty_pages(&self) -> &DirtyPages {
        &self.dirty
    }

    /// Clears the dirty accumulator (called once the pages have been
    /// folded into a snapshot capture). A no-op while tracking is off:
    /// untracked writes would never re-mark, so the bitmap must stay
    /// saturated.
    pub(crate) fn clear_dirty(&mut self) {
        if self.tracking() {
            self.dirty.reset(self.pixels.len());
        }
    }

    /// Saturates the dirty accumulator (the whole surface considered
    /// changed since the last capture) and syncs the shadow, so the next
    /// reconcile diffs against the surface as it stands now — a stale
    /// shadow could otherwise hide a later change that happens to land
    /// back on the stale bytes.
    pub(crate) fn mark_all_dirty(&mut self) {
        self.dirty.mark_all();
        if self.tracking() {
            self.shadow.copy_from_slice(&self.pixels);
        }
    }

    /// Restores pixels `[start, end)` from `src` (a full pixel-payload
    /// slice, same format as [`FrameBuffer::load_pixels`]), masking each
    /// byte to 4 bits. The whole window is re-marked dirty regardless of
    /// whether bytes changed: the caller's reference snapshot may hold
    /// different bytes there even where the live buffer and the restore
    /// target agree.
    pub(crate) fn restore_pixel_range(&mut self, src: &[u8], start: usize, end: usize) {
        let end = end.min(self.pixels.len()).min(src.len());
        if start >= end {
            return;
        }
        // memcpy then a straight-line mask pass — both vectorize, unlike a
        // fused per-byte masked copy (this window can be the whole surface).
        self.pixels[start..end].copy_from_slice(&src[start..end]);
        for p in &mut self.pixels[start..end] {
            *p &= 0x0F;
        }
        if self.tracking() {
            self.shadow[start..end].copy_from_slice(&self.pixels[start..end]);
        }
        self.dirty.mark_range(start, end - start);
    }
}

impl fmt::Display for FrameBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameBuffer({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_black() {
        let fb = FrameBuffer::new(8, 8);
        assert!(fb.pixels().iter().all(|&p| p == 0));
        assert_eq!(fb.width(), 8);
        assert_eq!(fb.height(), 8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = FrameBuffer::new(0, 8);
    }

    #[test]
    fn set_and_get_pixel() {
        let mut fb = FrameBuffer::new(4, 4);
        fb.set_pixel(2, 3, Color(9));
        assert_eq!(fb.pixel(2, 3), Color(9));
    }

    #[test]
    fn out_of_bounds_access_is_safe() {
        let mut fb = FrameBuffer::new(4, 4);
        fb.set_pixel(-1, 0, Color(5));
        fb.set_pixel(4, 0, Color(5));
        fb.set_pixel(0, 99, Color(5));
        assert_eq!(fb.pixel(-1, 0), Color::BLACK);
        assert_eq!(fb.pixel(99, 99), Color::BLACK);
        assert!(fb.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn fill_rect_clips() {
        let mut fb = FrameBuffer::new(4, 4);
        fb.fill_rect(-2, -2, 4, 4, Color(3));
        assert_eq!(fb.pixel(0, 0), Color(3));
        assert_eq!(fb.pixel(1, 1), Color(3));
        assert_eq!(fb.pixel(2, 2), Color::BLACK);
    }

    #[test]
    fn clear_fills_everything() {
        let mut fb = FrameBuffer::new(4, 4);
        fb.clear(Color(7));
        assert!(fb.pixels().iter().all(|&p| p == 7));
    }

    #[test]
    fn blit_treats_zero_as_transparent() {
        let mut fb = FrameBuffer::new(4, 4);
        fb.clear(Color(1));
        fb.blit(0, 0, 2, &[0, 5, 5, 0]);
        assert_eq!(fb.pixel(0, 0), Color(1)); // transparent
        assert_eq!(fb.pixel(1, 0), Color(5));
        assert_eq!(fb.pixel(0, 1), Color(5));
        assert_eq!(fb.pixel(1, 1), Color(1)); // transparent
    }

    #[test]
    fn color_index_wraps_to_palette() {
        let mut fb = FrameBuffer::new(2, 2);
        fb.set_pixel(0, 0, Color(0xFF));
        assert_eq!(fb.pixel(0, 0), Color(0x0F));
    }

    #[test]
    fn draw_number_renders_digits() {
        let mut fb = FrameBuffer::new(16, 8);
        fb.draw_number(0, 0, 10, Color::WHITE);
        // "1" then "0": some pixels must be set in both 4-wide cells.
        let left: u32 = (0..4)
            .flat_map(|x| (0..5).map(move |y| (x, y)))
            .filter(|&(x, y)| fb.pixel(x, y) == Color::WHITE)
            .count() as u32;
        let right: u32 = (4..8)
            .flat_map(|x| (0..5).map(move |y| (x, y)))
            .filter(|&(x, y)| fb.pixel(x, y) == Color::WHITE)
            .count() as u32;
        assert!(left > 0 && right > 0);
    }

    #[test]
    fn rgb_translation_uses_palette() {
        let mut fb = FrameBuffer::new(1, 1);
        fb.set_pixel(0, 0, Color(4));
        assert_eq!(fb.to_rgb(), vec![0xAA, 0x00, 0x00]);
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let fb = FrameBuffer::new(8, 4);
        let art = fb.to_ascii(2);
        assert_eq!(art.lines().count(), 2);
        assert!(art.lines().all(|l| l.len() == 4));
    }

    #[test]
    fn content_hash_tracks_changes() {
        let mut fb = FrameBuffer::new(8, 8);
        let h0 = fb.content_hash();
        fb.set_pixel(3, 3, Color(2));
        assert_ne!(fb.content_hash(), h0);
    }

    #[test]
    fn dirty_tracking_is_value_aware() {
        let mut fb = FrameBuffer::new(32, 32);
        assert!(fb.dirty_pages().is_all(), "fresh buffer starts saturated");
        fb.enable_dirty_tracking();
        fb.clear_dirty();
        assert_eq!(fb.dirty_pages().count_pages(), 0);

        // A no-op write (black onto black) must not mark.
        fb.set_pixel(1, 1, Color::BLACK);
        fb.clear(Color::BLACK);
        fb.fill_rect(0, 0, 8, 8, Color::BLACK);
        fb.reconcile_dirty();
        assert_eq!(fb.dirty_pages().count_pages(), 0);

        // A real write marks exactly the covering page.
        fb.set_pixel(1, 1, Color(5));
        fb.reconcile_dirty();
        assert_eq!(
            fb.dirty_pages().byte_ranges().collect::<Vec<_>>(),
            vec![(0, 256)]
        );

        // Redrawing the same value after a capture stays clean.
        fb.clear_dirty();
        fb.set_pixel(1, 1, Color(5));
        fb.reconcile_dirty();
        assert_eq!(fb.dirty_pages().count_pages(), 0);
    }

    #[test]
    fn transient_clear_and_redraw_nets_to_zero_dirt() {
        // The Button Race shape: a static sprite erased by the per-frame
        // `cls` and repainted identically. Draw-time marking would report
        // every page the sprite touches; the frame-end reconcile sees the
        // finished frame equals the previous one and marks nothing.
        let mut fb = FrameBuffer::new(32, 32);
        fb.enable_dirty_tracking();
        fb.fill_rect(8, 0, 1, 32, Color::WHITE); // vertical line, many pages
        fb.reconcile_dirty();
        fb.clear_dirty();

        fb.clear(Color::BLACK);
        fb.fill_rect(8, 0, 1, 32, Color::WHITE); // same line redrawn
        fb.reconcile_dirty();
        assert_eq!(fb.dirty_pages().count_pages(), 0);

        // Moving the line dirties exactly the union of old and new pixels.
        fb.clear(Color::BLACK);
        fb.fill_rect(9, 0, 1, 32, Color::WHITE);
        fb.reconcile_dirty();
        assert!(fb.dirty_pages().count_pages() > 0);
    }

    #[test]
    fn equality_ignores_dirty_history() {
        let mut a = FrameBuffer::new(8, 8);
        let mut b = FrameBuffer::new(8, 8);
        a.clear_dirty();
        b.set_pixel(0, 0, Color(3));
        b.set_pixel(0, 0, Color::BLACK); // same pixels, different history
        assert_eq!(a, b);
        a.set_pixel(1, 0, Color(1));
        assert_ne!(a, b);
    }

    #[test]
    fn restore_pixel_range_masks_and_remarks() {
        let mut fb = FrameBuffer::new(32, 32);
        fb.enable_dirty_tracking();
        fb.clear_dirty();
        let mut img = vec![0u8; 32 * 32];
        img[300] = 0xF7; // high nibble must be masked off
        fb.restore_pixel_range(&img, 256, 512);
        assert_eq!(fb.pixels()[300], 0x07);
        assert_eq!(
            fb.dirty_pages().byte_ranges().collect::<Vec<_>>(),
            vec![(256, 512)]
        );
    }

    #[test]
    fn hline_vline() {
        let mut fb = FrameBuffer::new(8, 8);
        fb.hline(1, 1, 3, Color(2));
        fb.vline(1, 1, 3, Color(3));
        assert_eq!(fb.pixel(3, 1), Color(2));
        assert_eq!(fb.pixel(1, 3), Color(3));
        assert_eq!(fb.pixel(1, 1), Color(3)); // vline drew last
    }
}
