//! A real-time Brawler duel over real UDP sockets on localhost.
//!
//! This is the paper's deployment shape end-to-end: two OS processes'
//! worth of state (here, two threads), each with its own game replica, UDP
//! socket, and wall-clock frame loop. Seeded bots play five seconds of the
//! fighting game; afterwards we verify both replicas computed bit-identical
//! states, and render the final frame of site 0 as ASCII art.
//!
//! ```text
//! cargo run --release --example lan_duel
//! ```

use coplay::games::Brawler;
use coplay::net::{PeerId, UdpTransport};
use coplay::sync::{run_realtime, LockstepSession, RandomPresser, SyncConfig};
use coplay::vm::{Machine, Player};

const FRAMES: u64 = 300; // five seconds at 60 FPS

fn main() {
    // Bind two UDP sockets on ephemeral localhost ports and introduce them.
    let mut t0 = UdpTransport::bind(PeerId(0), "127.0.0.1:0").expect("bind site 0");
    let mut t1 = UdpTransport::bind(PeerId(1), "127.0.0.1:0").expect("bind site 1");
    let a0 = t0.local_addr().expect("addr");
    let a1 = t1.local_addr().expect("addr");
    t0.add_peer(PeerId(1), a1).expect("peer");
    t1.add_peer(PeerId(0), a0).expect("peer");
    println!("site 0 on {a0}, site 1 on {a1} — fighting for {FRAMES} frames of real time…");

    let site0 = LockstepSession::new(
        SyncConfig::two_player(0),
        Brawler::new(),
        t0,
        RandomPresser::new(Player::ONE, 2024),
    );
    let site1 = LockstepSession::new(
        SyncConfig::two_player(1),
        Brawler::new(),
        t1,
        RandomPresser::new(Player::TWO, 4048),
    );

    let h0 = std::thread::spawn(move || {
        let mut hashes = Vec::new();
        let (outcome, session) =
            run_realtime(site0, FRAMES, |r, _| hashes.push(r.state_hash.unwrap()))
                .expect("site 0 failed");
        (outcome, hashes, session)
    });
    let h1 = std::thread::spawn(move || {
        let mut hashes = Vec::new();
        let (outcome, session) =
            run_realtime(site1, FRAMES, |r, _| hashes.push(r.state_hash.unwrap()))
                .expect("site 1 failed");
        (outcome, hashes, session)
    });

    let (o0, hashes0, session0) = h0.join().expect("site 0 thread");
    let (o1, hashes1, _session1) = h1.join().expect("site 1 thread");
    println!("site 0 finished: {o0:?}; site 1 finished: {o1:?}");

    let common = hashes0.len().min(hashes1.len());
    assert_eq!(
        hashes0[..common],
        hashes1[..common],
        "replicas diverged over real UDP!"
    );
    println!("replicas agreed on all {common} common frames ✓");

    let game = session0.machine();
    let (h0p, h1p) = game.health();
    println!(
        "after five seconds: P1 health {h0p}, P2 health {h1p}, rounds {:?}, clock {}s",
        game.rounds(),
        game.clock()
    );
    println!(
        "\nfinal frame (site 0's screen):\n{}",
        game.framebuffer().to_ascii(2)
    );
}
