//! Full rendezvous-to-rematch flow: a lobby server, a host, and a joiner —
//! the complete §2 user story ("some rendezvous mechanism is required for
//! them to find each other, such as … games lobby").
//!
//! 1. A lobby server runs on one UDP socket.
//! 2. The host registers "Saturday Shooter" (co-op, 2 slots).
//! 3. The joiner lists sessions, picks it, and is assigned site 1.
//! 4. Both start a real-time lockstep session of the Shooter and play
//!    three seconds; afterwards we verify the replicas agreed, and record
//!    the match to a replay that reproduces it move for move.
//!
//! ```text
//! cargo run --release --example matchmaking
//! ```

use coplay::clock::{SimDuration, SystemClock};
use coplay::games::Shooter;
use coplay::lobby::{join_session, list_sessions, register_session, LobbyMessage, LobbyServer};
use coplay::net::{PeerId, Transport, UdpTransport};
use coplay::sync::{run_realtime, LockstepSession, RandomPresser, Recording, SyncConfig};
use coplay::vm::{Machine, Player};

const LOBBY: PeerId = PeerId(100);
const FRAMES: u64 = 180;

fn main() {
    // --- lobby server on its own socket + thread -------------------------
    let mut lobby_sock = UdpTransport::bind(LOBBY, "127.0.0.1:0").expect("bind lobby");
    let lobby_addr = lobby_sock.local_addr().expect("addr");
    println!("lobby server on {lobby_addr}");

    // Host and joiner sockets, all introduced to the lobby.
    let mut host_sock = UdpTransport::bind(PeerId(0), "127.0.0.1:0").expect("bind host");
    let mut join_sock = UdpTransport::bind(PeerId(1), "127.0.0.1:0").expect("bind joiner");
    let host_addr = host_sock.local_addr().expect("addr");
    let join_addr = join_sock.local_addr().expect("addr");
    host_sock.add_peer(LOBBY, lobby_addr).expect("peer");
    join_sock.add_peer(LOBBY, lobby_addr).expect("peer");
    lobby_sock.add_peer(PeerId(0), host_addr).expect("peer");
    lobby_sock.add_peer(PeerId(1), join_addr).expect("peer");

    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_server = done.clone();
    let server_thread = std::thread::spawn(move || {
        let clock = SystemClock::new();
        let mut server = LobbyServer::new();
        while !done_server.load(std::sync::atomic::Ordering::Relaxed) {
            use coplay::clock::Clock;
            let now = clock.now();
            while let Some((from, data)) = lobby_sock.try_recv().expect("lobby recv") {
                if let Ok(msg) = LobbyMessage::decode(&data) {
                    for (to, reply) in server.handle(from, &msg, now) {
                        let _ = lobby_sock.send(to, &reply.encode());
                    }
                }
            }
            server.expire(now);
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
    });

    // --- rendezvous -------------------------------------------------------
    let clock = SystemClock::new();
    let deadline = SimDuration::from_secs(3);
    let rom_hash = Shooter::new().state_hash();
    let id = register_session(
        &mut host_sock,
        &clock,
        LOBBY,
        "Saturday Shooter",
        rom_hash,
        2,
        deadline,
    )
    .expect("register");
    println!("host registered {id}");

    let listing = list_sessions(&mut join_sock, &clock, LOBBY, deadline).expect("list");
    println!(
        "joiner sees {} session(s): {:?}",
        listing.len(),
        listing.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    let slot = join_session(&mut join_sock, &clock, LOBBY, listing[0].id, deadline).expect("join");
    assert_eq!(slot.rom_hash, rom_hash, "lobby-advertised game must match");
    println!("joiner granted site {} at host {}", slot.site, slot.host);

    // --- the actual game session (direct host<->joiner sockets) ----------
    let mut t0 = UdpTransport::bind(PeerId(0), "127.0.0.1:0").expect("bind");
    let mut t1 = UdpTransport::bind(PeerId(slot.site), "127.0.0.1:0").expect("bind");
    let a0 = t0.local_addr().expect("addr");
    let a1 = t1.local_addr().expect("addr");
    t0.add_peer(PeerId(slot.site), a1).expect("peer");
    t1.add_peer(PeerId(0), a0).expect("peer");

    let host = LockstepSession::new(
        SyncConfig::two_player(0),
        Shooter::new(),
        t0,
        RandomPresser::new(Player::ONE, 111),
    );
    let joiner = LockstepSession::new(
        SyncConfig::two_player(slot.site),
        Shooter::new(),
        t1,
        RandomPresser::new(Player::TWO, 222),
    );

    let jh = std::thread::spawn(move || {
        let mut rec = Recording::new(rom_hash);
        let r = run_realtime(host, FRAMES, |report, _| rec.push_report(report));
        r.map(|(_, session)| (rec, session.machine().state_hash(), session.stats()))
    });
    let jj = std::thread::spawn(move || {
        let mut hashes = Vec::new();
        run_realtime(joiner, FRAMES, |r, _| hashes.push(r.state_hash.unwrap())).map(|_| hashes)
    });
    let (recording, host_final, stats) = jh.join().expect("host").expect("host ran");
    let join_hashes = jj.join().expect("joiner").expect("joiner ran");
    println!(
        "played {FRAMES} frames: {} msgs sent, {} received, {} stalls, retransmission ratio {:.2}",
        stats.input_messages_sent,
        stats.input_messages_received,
        stats.stalled_frames,
        stats.retransmission_ratio()
    );
    assert_eq!(
        join_hashes.last().copied(),
        Some(host_final),
        "replicas diverged"
    );

    // --- replay the recorded match locally --------------------------------
    let mut replica = Shooter::new();
    recording.replay(&mut replica).expect("replay");
    assert_eq!(
        replica.state_hash(),
        host_final,
        "replay must reproduce the match"
    );
    println!(
        "recorded {} frames; local replay reproduced the exact final state ✓",
        recording.len()
    );
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    server_thread.join().expect("lobby thread");
}
