//! A miniature Figure-1/Figure-2 sweep from the public API: how does the
//! shared game behave as the network gets worse?
//!
//! Runs the emulated-console ROM Pong (the full CPU-emulation path, like
//! the paper's MAME) across a handful of RTTs and prints both of the
//! paper's metrics per point. The full 25-point, 3600-frame sweeps live in
//! `coplay-bench` (`cargo run -p coplay-bench --bin fig1`).
//!
//! ```text
//! cargo run --release --example netem_sweep
//! ```

use coplay::clock::SimDuration;
use coplay::games::GameId;
use coplay::sim::{run_sweep, ExperimentConfig};

fn main() {
    let base = ExperimentConfig {
        game: GameId::RomPong, // exercise the emulated CPU end-to-end
        frames: 900,
        ..ExperimentConfig::default()
    };

    let points: Vec<SimDuration> = [0u64, 40, 80, 120, 160, 200, 280, 400]
        .into_iter()
        .map(SimDuration::from_millis)
        .collect();

    println!(
        "ROM Pong on the emulated console, {} frames per point\n",
        base.frames
    );
    println!("RTT(ms)  frame(ms)    FPS  smoothness(ms)  synchrony(ms)  converged");
    let rows = run_sweep(&base, &points, |_, _| {}).expect("sweep failed");
    for row in &rows {
        let s = &row.result.sites[0];
        println!(
            "{:7}  {:9.2}  {:5.1}  {:14.2}  {:13.2}  {}",
            row.rtt.as_millis(),
            s.mean_frame_time_ms,
            s.fps(),
            row.result.worst_deviation_ms(),
            row.result.synchrony_ms,
            row.result.converged,
        );
    }
    println!(
        "\nThe paper's shape: full 60 FPS with near-zero deviation up to a\n\
         threshold RTT, then an unstable inflection, then a slower but still\n\
         perfectly consistent game. Logical consistency (converged) never\n\
         breaks — only real-time quality degrades."
    );
}
