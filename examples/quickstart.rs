//! Quickstart: two simulated players share a game of Pong over an impaired
//! network, exactly as the paper's system would across the Internet.
//!
//! The run is fully deterministic (virtual time, seeded inputs and
//! impairments) and finishes in well under a second of wall time, printing
//! the paper's §4 metrics plus the convergence verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coplay::clock::SimDuration;
use coplay::games::GameId;
use coplay::sim::{run_experiment, ExperimentConfig};

fn main() {
    // A 80ms-RTT link with a little jitter and 1% loss: a decent home
    // broadband path, comfortably inside the paper's 140ms threshold.
    let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(80));
    cfg.game = GameId::Pong;
    cfg.frames = 1800; // 30 seconds of play
    cfg.jitter = SimDuration::from_millis(3);
    cfg.loss = 0.01;

    println!("coplay quickstart: 2 players, Pong, RTT 80ms ± 3ms, 1% loss");
    println!("simulating {} frames…\n", cfg.frames);

    let result = run_experiment(cfg).expect("simulation failed");

    for (i, site) in result.sites.iter().enumerate() {
        println!(
            "site {i}: {:.2} ms/frame ({:.1} FPS), smoothness (avg deviation) {:.2} ms",
            site.mean_frame_time_ms,
            site.fps(),
            site.frame_time_deviation_ms
        );
    }
    println!(
        "synchrony: the sites began the same frame within {:.2} ms of each other on average",
        result.synchrony_ms
    );
    println!(
        "network: {} datagrams offered, {} lost and retransmitted around",
        result.packets_offered, result.packets_lost
    );
    println!(
        "replica convergence: {}",
        if result.converged {
            "IDENTICAL state hash on every frame ✓"
        } else {
            "DIVERGED ✗ (this would be a bug)"
        }
    );
    assert!(result.converged);
}
