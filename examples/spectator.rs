//! Observers and latecomers: the journal-version extensions.
//!
//! Two players fight in Brawler while (a) an observer watches from the
//! first frame and (b) a latecomer tunes in mid-match, fetching a state
//! snapshot from the master and replaying live from there. Both replicas
//! must converge bit-for-bit with the players'.
//!
//! ```text
//! cargo run --release --example spectator
//! ```

use coplay::clock::SimDuration;
use coplay::games::GameId;
use coplay::sim::{run_experiment, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(60));
    cfg.game = GameId::Brawler;
    cfg.frames = 1200; // 20 seconds
    cfg.observers = 1; // watches from frame 0
    cfg.latecomer_at = Some(SimDuration::from_secs(8)); // joins mid-match

    println!(
        "2 players + 1 observer + 1 latecomer (joins at ~frame 480), RTT 60ms, {} frames…\n",
        cfg.frames
    );
    let result = run_experiment(cfg).expect("simulation failed");

    for (i, site) in result.sites.iter().enumerate() {
        println!(
            "player {i}: {:.2} ms/frame, deviation {:.2} ms",
            site.mean_frame_time_ms, site.frame_time_deviation_ms
        );
    }
    println!("player synchrony: {:.2} ms", result.synchrony_ms);
    println!(
        "all replicas (players, observer, latecomer): {}",
        if result.converged {
            "CONVERGED ✓ — the latecomer's snapshot join reproduced the exact match state"
        } else {
            "DIVERGED ✗"
        }
    );
    assert!(result.converged);
}
