//! Flight-recorder tour: run a deliberately bad network (200 ms RTT, 5%
//! loss — past the paper's full-speed threshold) and read the telemetry a
//! netplay operator would: the JSONL event trail, the metrics document,
//! and the Prometheus exposition.
//!
//! ```text
//! cargo run --release --example telemetry_dump
//! ```

use coplay::clock::SimDuration;
use coplay::games::GameId;
use coplay::sim::{run_experiment, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(200));
    cfg.game = GameId::Pong;
    cfg.frames = 360;
    cfg.loss = 0.05;
    cfg.telemetry = true;

    println!(
        "two-site Pong, 200 ms RTT, 5% loss, {} frames\n",
        cfg.frames
    );
    let r = run_experiment(cfg).expect("experiment");
    println!(
        "converged: {}   stalls at master: {}   packets dropped: {}\n",
        r.converged,
        r.telemetry[0].counter("stalls_total"),
        r.net_telemetry.counter("packets_dropped_total"),
    );

    let master = &r.telemetry[0];
    let dump = master.dump_jsonl();
    println!(
        "--- master flight recorder: {} events; first stall and its recovery ---",
        master.event_count()
    );
    let mut shown = 0;
    for line in dump.lines() {
        if shown > 0 || line.contains("\"stall_begin\"") {
            println!("{line}");
            shown += 1;
            if shown == 8 {
                break;
            }
        }
    }

    println!("\n--- Prometheus exposition (what a lobby MetricsRequest returns) ---");
    for line in master.prometheus().lines() {
        if line.contains("frame_time_us") || line.contains("stalls_total") {
            println!("{line}");
        }
    }
}
