//! Flight-recorder tour: run a deliberately bad network (200 ms RTT, 5%
//! loss — past the paper's full-speed threshold) with frame-lifecycle
//! tracing on, and read the telemetry a netplay operator would: a
//! cross-site span timeline for one frame, the JSONL event trail, and the
//! Prometheus exposition.
//!
//! ```text
//! cargo run --release --example telemetry_dump
//! ```

use coplay::clock::SimDuration;
use coplay::games::GameId;
use coplay::sim::{run_experiment, ExperimentConfig};
use coplay::telemetry::EventKind;

fn main() {
    let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(200));
    cfg.game = GameId::Pong;
    cfg.frames = 360;
    cfg.loss = 0.05;
    cfg.telemetry = true;
    cfg.trace = true;

    println!(
        "two-site Pong, 200 ms RTT, 5% loss, {} frames, tracing on\n",
        cfg.frames
    );
    let r = run_experiment(cfg).expect("experiment");
    println!(
        "converged: {}   stalls at master: {}   packets dropped: {}\n",
        r.converged,
        r.telemetry[0].counter("stalls_total"),
        r.net_telemetry.counter("packets_dropped_total"),
    );

    // --- Span timeline: one input frame's life across both sites -------
    // Pick a frame late enough that the pipeline is warm, then collect
    // every span record either site stamped for it and print them in time
    // order. This is the raw material `tracescope` merges at scale.
    let frame = 120u64;
    let mut timeline = Vec::new();
    for (site, tel) in r.telemetry.iter().enumerate() {
        for ev in tel.events() {
            if let EventKind::Span {
                stage,
                frame: f,
                peer,
            } = ev.kind
            {
                if f == frame {
                    timeline.push((ev.at, site, stage, peer));
                }
            }
        }
    }
    timeline.sort();
    println!("--- frame {frame}: cross-site span timeline ---");
    println!("{:>12}  {:<6} {:<20} peer", "t (us)", "site", "stage");
    for (at, site, stage, peer) in &timeline {
        println!(
            "{:>12}  site{:<2} {:<20} {}",
            at.as_micros(),
            site,
            stage.name(),
            peer
        );
    }
    assert!(!timeline.is_empty(), "tracing was on; spans must exist");

    let master = &r.telemetry[0];
    println!(
        "\n--- master flight recorder: {} events ({} dropped, {} of them spans); first stall ---",
        master.event_count(),
        master.dropped_events(),
        master.dropped_spans()
    );
    let dump = master.dump_jsonl();
    let mut shown = 0;
    for line in dump.lines() {
        if shown > 0 || line.contains("\"stall_begin\"") {
            println!("{line}");
            shown += 1;
            if shown == 8 {
                break;
            }
        }
    }

    println!("\n--- Prometheus exposition (what a lobby MetricsRequest returns) ---");
    for line in master.prometheus().lines() {
        if line.contains("frame_time_us")
            || line.contains("stalls_total")
            || line.contains("spans_recorded")
        {
            println!("{line}");
        }
    }
}
