#!/usr/bin/env bash
# Local CI: everything a change must pass before merging.
# Uses only the local toolchain — the workspace has no external deps and
# builds fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> detlint (determinism audit)"
cargo run -q -p detlint --release

echo "==> rollback netcode tests"
cargo test -q -p coplay-rollback

echo "==> rollback sweep smoke (writes results/BENCH_rollback.json)"
cargo run -q --release -p coplay-bench --bin rollback_sweep -- --quick

echo "==> hot-path smoke + perf-regression guard (2x vs checked-in baseline)"
cargo run -q --release -p coplay-bench --bin hotpath -- --quick --check results/hotpath_baseline.json

echo "==> tracescope smoke (cross-site span merge; fails if breakdown != e2e within 5%)"
cargo run -q --release -p coplay-bench --bin tracescope -- --quick
cargo run -q --release -p coplay-bench --bin tracescope -- --quick --rollback

echo "CI OK"
