#!/usr/bin/env bash
# Local CI: everything a change must pass before merging.
# Uses only the local toolchain — the workspace has no external deps and
# builds fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> coplay-lint (determinism + panic-path + hot-alloc audit)"
# All five passes: determinism, panic_path, unchecked_index, hot_alloc,
# and wire-schema extraction. Zero unwaived findings required; writes
# results/detlint.json for upload.
cargo run -q -p detlint --release

echo "==> coplay-lint --check-schema (wire drift vs results/wire_schema.json)"
# Fails when a codec's field layout changes without a VERSION bump.
# After an *intentional* wire change + version bump, re-pin with
# `cargo run -p detlint -- --update-schema` and commit the lockfile.
cargo run -q -p detlint --release -- --check-schema

echo "==> rollback netcode tests"
cargo test -q -p coplay-rollback

echo "==> rollback sweep smoke (writes results/BENCH_rollback.json)"
cargo run -q --release -p coplay-bench --bin rollback_sweep -- --quick

echo "==> hot-path smoke + perf-regression guard (2x vs checked-in baseline)"
cargo run -q --release -p coplay-bench --bin hotpath -- --quick --check results/hotpath_baseline.json

echo "==> tracescope smoke (cross-site span merge; fails if breakdown != e2e within 5%)"
cargo run -q --release -p coplay-bench --bin tracescope -- --quick
cargo run -q --release -p coplay-bench --bin tracescope -- --quick --rollback

echo "==> relay tests (routing core, wire codec, client adapter, UDP loop)"
cargo test -q -p coplay-relay

echo "==> fleet smoke (64 sessions) + perf-regression guard (2x vs checked-in baseline)"
cargo run -q --release -p coplay-bench --bin fleet -- --quick --check results/fleet_baseline.json

echo "CI OK"
