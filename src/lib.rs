//! **coplay** — real-time collaboration transparency for emulated legacy
//! TV/arcade games.
//!
//! A from-scratch Rust reproduction of *"An Approach to Sharing Legacy
//! TV/Arcade Games for Real-Time Collaboration"* (Zhao, Li, Gu, Shao, Gu —
//! ICDCS 2009): a synchronization layer that turns single-computer
//! deterministic game emulators into distributed multi-player games without
//! modifying (or understanding) the games.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`vm`] — the deterministic arcade console (the MAME stand-in): CPU,
//!   assembler, video/audio/input devices, the [`vm::Machine`] black box.
//! * [`games`] — Pong, a fighting game, a co-op shooter, and assembly ROMs.
//! * [`sync`] — the paper's contribution: `SyncInput` lockstep with local
//!   lag (Algorithm 2), frame pacing (Algorithms 3–4), sessions, observers,
//!   latecomers.
//! * [`rollback`] — the lockstep alternative: predicted-input speculation
//!   with snapshot/resimulate repair, bounded by a rollback window
//!   (pick per session via `sync::ConsistencyMode`).
//! * [`net`] — unreliable-datagram transports and Netem-style impairments.
//! * [`clock`] — virtual/system time and the measurement time server.
//! * [`sim`] — the deterministic experiment harness behind the paper's
//!   Figures 1 and 2.
//! * [`lobby`] — the rendezvous service §2 of the paper assumes exists.
//! * [`relay`] — a multiplexed input-relay server: many sessions share one
//!   UDP socket, traffic forwarded by session/site without being decoded.
//! * [`telemetry`] — in-band observability: flight recorder, metrics
//!   registry with log-bucketed histograms, JSONL/Prometheus exporters.
//!
//! # Quickstart
//!
//! Play a game across two "machines" in-process:
//!
//! ```
//! use coplay::net::{loopback, PeerId};
//! use coplay::sync::{run_realtime, LockstepSession, RandomPresser, SyncConfig};
//! use coplay::games::Pong;
//! use coplay::vm::Player;
//!
//! let (ta, tb) = loopback(PeerId(0), PeerId(1));
//! let mut cfg0 = SyncConfig::two_player(0);
//! let mut cfg1 = SyncConfig::two_player(1);
//! cfg0.cfps = 240; // run the doc test fast
//! cfg1.cfps = 240;
//! let site0 = LockstepSession::new(cfg0, Pong::new(), ta,
//!                                  RandomPresser::new(Player::ONE, 1));
//! let site1 = LockstepSession::new(cfg1, Pong::new(), tb,
//!                                  RandomPresser::new(Player::TWO, 2));
//! let h0 = std::thread::spawn(move || {
//!     let mut h = Vec::new();
//!     run_realtime(site0, 30, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
//! });
//! let h1 = std::thread::spawn(move || {
//!     let mut h = Vec::new();
//!     run_realtime(site1, 30, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
//! });
//! // Both replicas computed identical state sequences.
//! assert_eq!(h0.join().unwrap()?, h1.join().unwrap()?);
//! # Ok::<(), coplay::sync::SyncError>(())
//! ```

#![warn(missing_docs)]

pub use coplay_clock as clock;
pub use coplay_games as games;
pub use coplay_lobby as lobby;
pub use coplay_net as net;
pub use coplay_relay as relay;
pub use coplay_rollback as rollback;
pub use coplay_sim as sim;
pub use coplay_sync as sync;
pub use coplay_telemetry as telemetry;
pub use coplay_vm as vm;
