//! Cross-crate integration: logical consistency (replica convergence) must
//! hold for every bundled game under every class of network impairment the
//! paper's environment can produce.

use coplay::clock::SimDuration;
use coplay::games::{catalog, GameId};
use coplay::net::JitterDistribution;
use coplay::sim::{run_experiment, ExperimentConfig};

fn quick(game: GameId) -> ExperimentConfig {
    ExperimentConfig {
        game,
        frames: 240,
        ..ExperimentConfig::default()
    }
}

#[test]
fn every_game_converges_on_a_clean_link() {
    for game in catalog() {
        let r = run_experiment(quick(game)).unwrap_or_else(|e| panic!("{game}: {e}"));
        assert!(r.converged, "{game} diverged on a clean link");
        assert!(
            (r.master_frame_time_ms() - 16.667).abs() < 0.5,
            "{game} not at 60fps: {}",
            r.master_frame_time_ms()
        );
    }
}

#[test]
fn every_game_converges_under_hostile_network() {
    for game in catalog() {
        let mut cfg = quick(game);
        cfg.rtt = SimDuration::from_millis(120);
        cfg.jitter = SimDuration::from_millis(10);
        cfg.jitter_dist = JitterDistribution::Normal;
        cfg.loss = 0.08;
        cfg.loss_correlation = 0.5;
        cfg.duplicate = 0.05;
        cfg.reorder = 0.05;
        let r = run_experiment(cfg).unwrap_or_else(|e| panic!("{game}: {e}"));
        assert!(r.converged, "{game} diverged under loss+jitter+dup+reorder");
    }
}

#[test]
fn heavy_tail_jitter_does_not_break_consistency() {
    let mut cfg = quick(GameId::Shooter);
    cfg.rtt = SimDuration::from_millis(80);
    cfg.jitter = SimDuration::from_millis(20);
    cfg.jitter_dist = JitterDistribution::HeavyTail;
    let r = run_experiment(cfg).expect("run");
    assert!(r.converged);
}

#[test]
fn beyond_threshold_rtt_is_slow_but_never_inconsistent() {
    // The paper recommends RTT <= 140ms; far beyond it the game must
    // degrade gracefully (slower frames), never diverge.
    let mut cfg = quick(GameId::Brawler);
    cfg.rtt = SimDuration::from_millis(400);
    let r = run_experiment(cfg).expect("run");
    assert!(r.converged);
    assert!(
        r.master_frame_time_ms() > 20.0,
        "400ms RTT must slow the game"
    );
}

#[test]
fn four_players_and_observers_converge() {
    let mut cfg = quick(GameId::Shooter);
    cfg.num_players = 4;
    cfg.observers = 2;
    cfg.rtt = SimDuration::from_millis(40);
    let r = run_experiment(cfg).expect("run");
    assert!(r.converged);
    assert_eq!(r.sites.len(), 4);
}

#[test]
fn latecomer_snapshot_join_reproduces_console_state() {
    // The emulated console has the largest snapshot (full 64KiB memory
    // image): the chunked snapshot transfer must reassemble it exactly.
    let mut cfg = quick(GameId::RomPong);
    cfg.frames = 420;
    cfg.rtt = SimDuration::from_millis(30);
    cfg.latecomer_at = Some(SimDuration::from_secs(3));
    let r = run_experiment(cfg).expect("run");
    assert!(r.converged, "latecomer console replica diverged");
}

#[test]
fn results_are_reproducible_across_runs() {
    let cfg = || {
        let mut c = quick(GameId::Pong);
        c.rtt = SimDuration::from_millis(100);
        c.loss = 0.05;
        c.jitter = SimDuration::from_millis(5);
        c
    };
    let a = run_experiment(cfg()).expect("run a");
    let b = run_experiment(cfg()).expect("run b");
    assert_eq!(a.sites[0].mean_frame_time_ms, b.sites[0].mean_frame_time_ms);
    assert_eq!(
        a.sites[1].frame_time_deviation_ms,
        b.sites[1].frame_time_deviation_ms
    );
    assert_eq!(a.synchrony_ms, b.synchrony_ms);
    assert_eq!(a.packets_lost, b.packets_lost);
}

#[test]
fn different_seeds_give_different_runs() {
    let mut a_cfg = quick(GameId::Pong);
    a_cfg.seed = 1;
    let mut b_cfg = quick(GameId::Pong);
    b_cfg.seed = 2;
    let a = run_experiment(a_cfg).expect("run a");
    let b = run_experiment(b_cfg).expect("run b");
    // Different input scripts produce different games; both still converge.
    assert!(a.converged && b.converged);
}

#[test]
fn larger_local_lag_tolerates_higher_rtt() {
    let run = |buf: u64| {
        let mut cfg = quick(GameId::Pong);
        cfg.rtt = SimDuration::from_millis(260);
        cfg.buf_frames = buf;
        run_experiment(cfg).expect("run").master_frame_time_ms()
    };
    let small_lag = run(4);
    let big_lag = run(12);
    assert!(
        big_lag < small_lag - 1.0,
        "12-frame lag ({big_lag}ms) should outpace 4-frame lag ({small_lag}ms) at RTT 260"
    );
}
