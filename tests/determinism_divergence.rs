//! Divergence detection under an adversarial network.
//!
//! Two full replicas (game VM + `InputSync` engine each) exchange input
//! messages through `NetemChannel` links configured to aggressively reorder
//! and duplicate datagrams. Logical consistency demands that the per-frame
//! `state_hash` sequences stay bit-for-bit identical anyway — and the test
//! also asserts the adversary actually fired, so a quiet channel can never
//! produce a vacuous pass.

use coplay::clock::{EventQueue, SimDuration, SimTime};
use coplay::games::GameId;
use coplay::net::{DetRng, JitterDistribution, NetemChannel, NetemConfig};
use coplay::sync::{InputSync, Message, SyncConfig};
use coplay::vm::InputWord;

/// One lockstep replica: engine, machine, and its per-frame hash trace.
struct Replica {
    sync: InputSync,
    machine: Box<dyn coplay::vm::Machine>,
    rng: DetRng,
    frame: u64,
    begun: bool,
    hashes: Vec<u64>,
}

impl Replica {
    fn new(site: u8, game: GameId) -> Replica {
        Replica {
            sync: InputSync::new(SyncConfig::two_player(site)),
            machine: game.create(),
            rng: DetRng::seed_from_u64(0xD1CE_0000 + site as u64),
            frame: 0,
            begun: false,
            hashes: Vec::new(),
        }
    }
}

/// Runs two replicas of `game` for `frames` frames over `cfg`-impaired
/// links and returns the per-frame hash traces plus combined channel stats.
fn run_adversarial(
    game: GameId,
    frames: usize,
    cfg: NetemConfig,
) -> ([Vec<u64>; 2], coplay::net::ChannelStats) {
    let mut replicas = [Replica::new(0, game), Replica::new(1, game)];
    // One independent impairment channel per direction.
    let mut links = [
        NetemChannel::new(cfg.clone(), 0xBAD_0001),
        NetemChannel::new(cfg, 0xBAD_0002),
    ];

    // In-flight datagrams: (destination site, encoded message).
    let mut queue: EventQueue<(usize, Vec<u8>)> = EventQueue::new();
    let tick = SimDuration::from_millis(2);
    let mut now = SimTime::ZERO;

    // 60s of virtual time is far more than `frames` frames need even at
    // the paced send interval; hitting it means lockstep wedged.
    for _ in 0..30_000 {
        // Deliver everything due by now.
        while queue.peek_time().is_some_and(|t| t <= now) {
            let (_, (dest, bytes)) = queue.pop().unwrap();
            let msg = Message::decode(&bytes).expect("replicas only send valid datagrams");
            if let Message::Input(input) = msg {
                replicas[dest].sync.on_message(&input, now);
            }
        }

        for site in 0..2 {
            let r = &mut replicas[site];
            if r.hashes.len() >= frames {
                continue;
            }
            if !r.begun {
                let local = InputWord(r.rng.next_u64() as u32);
                r.sync.begin_frame(r.frame, local, now);
                r.begun = true;
            }
            for (dst, msg) in r.sync.outgoing(now) {
                let bytes = Message::Input(msg).encode();
                let fate = links[site].process(now, bytes.len());
                for at in fate.deliveries {
                    queue.schedule(at, (dst as usize, bytes.clone()));
                }
            }
            if r.sync.ready() {
                let input = r.sync.take();
                r.machine.step_frame(input);
                r.hashes.push(r.machine.state_hash());
                r.frame += 1;
                r.begun = false;
            }
        }

        if replicas.iter().all(|r| r.hashes.len() >= frames) {
            break;
        }
        now = now.offset(tick.into());
    }

    let mut stats = links[0].stats();
    let s1 = links[1].stats();
    stats.offered += s1.offered;
    stats.delivered += s1.delivered;
    stats.lost += s1.lost;
    stats.overflowed += s1.overflowed;
    stats.duplicated += s1.duplicated;
    stats.reordered += s1.reordered;

    let [a, b] = replicas;
    ([a.hashes, b.hashes], stats)
}

fn adversarial_config() -> NetemConfig {
    NetemConfig::new()
        .delay(SimDuration::from_millis(30))
        .jitter(SimDuration::from_millis(8))
        .jitter_distribution(JitterDistribution::Normal)
        .reorder(0.25)
        .duplicate(0.20)
}

#[test]
fn replicas_agree_frame_by_frame_under_reordering_and_duplication() {
    const FRAMES: usize = 300;
    let ([a, b], stats) = run_adversarial(GameId::Brawler, FRAMES, adversarial_config());

    assert_eq!(a.len(), FRAMES, "replica 0 wedged at frame {}", a.len());
    assert_eq!(b.len(), FRAMES, "replica 1 wedged at frame {}", b.len());

    // The adversary must actually have fired, or the assertion below is
    // vacuous.
    assert!(stats.duplicated > 0, "channel never duplicated: {stats:?}");
    assert!(stats.reordered > 0, "channel never reordered: {stats:?}");

    for (frame, (ha, hb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            ha, hb,
            "state hashes diverged at frame {frame} (dup={}, reorder={})",
            stats.duplicated, stats.reordered
        );
    }
}

/// A rollback site and a lockstep site are *protocol-compatible*: each
/// maintains logical consistency its own way (speculate-and-repair vs.
/// wait), so their authoritative per-frame hashes must agree even over an
/// aggressively reordering/duplicating path whose RTT forces the rollback
/// site to actually speculate.
#[test]
fn rollback_site_matches_lockstep_site_over_adversarial_links() {
    use coplay::clock::{Clock, VirtualClock};
    use coplay::net::{PeerId, SimNetwork};
    use coplay::rollback::RollbackSession;
    use coplay::sync::{ConsistencyMode, LockstepSession, RandomPresser, Step};
    use coplay::vm::Player;

    const FRAMES: u64 = 240;
    let clock = VirtualClock::new();
    let net = SimNetwork::shared(clock.clone());
    // 140 ms RTT exceeds the 100 ms local-lag budget, so the rollback site
    // must predict the tail frames — and sometimes mispredict.
    let link = adversarial_config().delay(SimDuration::from_millis(70));
    SimNetwork::link_pair(&net, PeerId(0), PeerId(1), link, 0xBAD_C0DE);

    let mut cfg0 = SyncConfig::two_player(0);
    cfg0.consistency = ConsistencyMode::rollback();
    let cfg1 = SyncConfig::two_player(1);
    let mut a = RollbackSession::new(
        cfg0,
        GameId::Brawler.create(),
        SimNetwork::socket(&net, PeerId(0)),
        RandomPresser::new(Player::ONE, 11),
    );
    let mut b = LockstepSession::new(
        cfg1,
        GameId::Brawler.create(),
        SimNetwork::socket(&net, PeerId(1)),
        RandomPresser::new(Player::TWO, 22),
    );

    let mut confirmed: Vec<(u64, u64)> = Vec::new();
    let mut lockstep: Vec<(u64, u64)> = Vec::new();
    let tick = SimDuration::from_millis(1);
    for _ in 0..60_000 {
        let now = clock.now();
        net.borrow_mut().deliver_due(now);
        let _ = a.tick(now).expect("rollback site failed");
        confirmed.extend(a.take_confirmed());
        if let Step::FrameDone { report, .. } = b.tick(now).expect("lockstep site failed") {
            lockstep.push((report.frame, report.state_hash.unwrap()));
        }
        if confirmed.len() as u64 >= FRAMES && lockstep.len() as u64 >= FRAMES {
            break;
        }
        clock.set(now + tick);
    }
    assert!(confirmed.len() as u64 >= FRAMES, "rollback site wedged");
    assert!(lockstep.len() as u64 >= FRAMES, "lockstep site wedged");

    // Non-vacuity: the adversary fired and speculation was actually
    // repaired at least once.
    let stats = net
        .borrow()
        .link_stats(PeerId(0), PeerId(1))
        .expect("link exists");
    assert!(stats.duplicated > 0, "channel never duplicated: {stats:?}");
    assert!(stats.reordered > 0, "channel never reordered: {stats:?}");
    assert!(
        a.stats().rollbacks > 0,
        "RTT past the lag budget must force repairs"
    );

    let common = confirmed.len().min(lockstep.len());
    assert_eq!(
        &confirmed[..common],
        &lockstep[..common],
        "cross-mode replicas diverged"
    );
}

/// Forced divergence end-to-end through the black-box pipeline: one
/// replica's merged input word is tampered mid-run, the per-frame hashes
/// split, the tracing telemetry handle latches the `DesyncDetected`
/// anomaly, and `dump_if_anomalous` writes a self-contained forensics
/// bundle under `results/forensics/`.
#[test]
fn forced_divergence_produces_forensics_bundle() {
    use coplay::telemetry::{forensics, EventKind, SpanStage, Telemetry};

    const FRAMES: u64 = 120;
    const TAMPER_FRAME: u64 = 40;
    let tel = Telemetry::tracing(0xF0CE_4512, 0);

    let mut honest = GameId::Pong.create();
    let mut tampered = GameId::Pong.create();
    let mut rng = DetRng::seed_from_u64(0xBAD_1DEA);
    let mut divergence = None;
    for frame in 0..FRAMES {
        let at = SimTime::from_micros(frame * 16_667);
        let word = InputWord(rng.next_u64() as u32);
        tel.span(at, SpanStage::Sampled, frame, 0);
        tel.span(at, SpanStage::Merged, frame, 0);
        honest.step_frame(word);
        // A single flipped button bit in one replica's merged word is the
        // minimal corruption the hash check has to catch.
        let corrupted = if frame == TAMPER_FRAME {
            InputWord(word.0 ^ 1)
        } else {
            word
        };
        tampered.step_frame(corrupted);
        if divergence.is_none() && honest.state_hash() != tampered.state_hash() {
            divergence = Some(frame);
            tel.record(at, EventKind::DesyncDetected { frame });
        }
    }
    let diverged_at = divergence.expect("tampered input must split the hashes");
    assert!(
        diverged_at >= TAMPER_FRAME,
        "hashes split at {diverged_at}, before the frame {TAMPER_FRAME} tamper"
    );

    // Integration tests run with the workspace root as cwd, so this is the
    // same `results/forensics/` directory the sim harness dumps into.
    let root = std::path::Path::new("results/forensics");
    let dir = forensics::dump_if_anomalous(
        root,
        &tel,
        &[("input_log.txt", b"seed=0xBAD_1DEA".to_vec())],
    )
    .expect("bundle write failed")
    .expect("latched desync must produce a bundle");
    assert!(dir.starts_with(root));
    for file in [
        "MANIFEST.txt",
        "flight_recorder.jsonl",
        "metrics.json",
        "input_log.txt",
    ] {
        let contents = std::fs::read(dir.join(file)).expect("bundle file missing");
        assert!(!contents.is_empty(), "{file} is empty");
    }
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
    assert!(manifest.contains("trigger: desync"), "{manifest}");
    assert!(
        manifest.contains(&format!("\"frame\":{diverged_at}")),
        "manifest pins the diverging frame: {manifest}"
    );
}

#[test]
fn hash_traces_are_reproducible_across_runs() {
    // The whole harness — inputs, channels, delivery order — is seeded, so
    // a second run must reproduce the exact same trace. This is what makes
    // any future divergence failure debuggable.
    let cfg = adversarial_config();
    let ([a1, b1], _) = run_adversarial(GameId::Pong, 120, cfg.clone());
    let ([a2, b2], _) = run_adversarial(GameId::Pong, 120, cfg);
    assert_eq!(a1, a2);
    assert_eq!(b1, b2);
}
