//! Failure injection: §3.1's failure semantics, verified.
//!
//! "In the event that the remote site or the network fails, the local site
//! will be stuck in the loop freezing the game until it is recovered. It
//! does not make more sense to allow the player to proceed alone."
//!
//! These tests cut the simulated link mid-game, observe the freeze, heal
//! the link, and verify the game resumes and the replicas still converge.

use coplay::clock::{Clock, EventQueue, SimDuration, SimTime, VirtualClock};
use coplay::games::Pong;
use coplay::net::{NetemConfig, PeerId, SimNetwork};
use coplay::sync::{LockstepSession, RandomPresser, Step, SyncConfig};
use coplay::vm::Player;

/// A minimal deterministic driver for two sessions over a SimNetwork.
struct Harness {
    clock: VirtualClock,
    net: std::rc::Rc<std::cell::RefCell<SimNetwork>>,
    wakes: EventQueue<usize>,
    sessions: Vec<LockstepSession<Pong, coplay::net::SimSocket, RandomPresser>>,
    hashes: Vec<Vec<u64>>,
}

impl Harness {
    fn new(rtt_ms: u64) -> Harness {
        let clock = VirtualClock::new();
        let net = SimNetwork::shared(clock.clone());
        SimNetwork::link_pair(
            &net,
            PeerId(0),
            PeerId(1),
            NetemConfig::with_rtt(SimDuration::from_millis(rtt_ms)),
            7,
        );
        let mut wakes = EventQueue::new();
        let mut sessions = Vec::new();
        for site in 0..2u8 {
            let session = LockstepSession::new(
                SyncConfig::two_player(site),
                Pong::new(),
                SimNetwork::socket(&net, PeerId(site)),
                RandomPresser::new(Player(site), 100 + site as u64),
            );
            wakes.schedule(SimTime::ZERO, site as usize);
            sessions.push(session);
        }
        Harness {
            clock,
            net,
            wakes,
            sessions,
            hashes: vec![Vec::new(), Vec::new()],
        }
    }

    /// Advances virtual time to `until`, ticking sessions as events fire.
    fn run_until(&mut self, until: SimTime) {
        loop {
            let next_net = self.net.borrow_mut().next_delivery_time();
            let next_wake = self.wakes.peek_time();
            let t = match (next_net, next_wake) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return,
            };
            if t > until {
                self.clock.set(until.max(self.clock.now()));
                return;
            }
            self.clock.set(t.max(self.clock.now()));
            let now = self.clock.now();
            if self.net.borrow_mut().deliver_due(now) > 0 {
                for idx in 0..self.sessions.len() {
                    self.tick(idx, now);
                }
            }
            while let Some(at) = self.wakes.peek_time() {
                if at > now {
                    break;
                }
                let (_, idx) = self.wakes.pop().expect("peeked");
                self.tick(idx, now);
            }
        }
    }

    fn tick(&mut self, idx: usize, now: SimTime) {
        match self.sessions[idx].tick(now).expect("session") {
            Step::Wait(t) => {
                self.wakes.schedule(t.max(now), idx);
            }
            Step::FrameDone { report, next_wake } => {
                self.hashes[idx].push(report.state_hash.unwrap());
                self.wakes.schedule(next_wake.max(now), idx);
            }
            Step::Stopped(r) => panic!("unexpected stop: {r}"),
        }
    }

    fn set_link(&mut self, up: bool) {
        let mut net = self.net.borrow_mut();
        net.set_link_up(PeerId(0), PeerId(1), up);
        net.set_link_up(PeerId(1), PeerId(0), up);
    }

    fn frames(&self, site: usize) -> usize {
        self.hashes[site].len()
    }
}

#[test]
fn network_outage_freezes_and_recovery_resumes() {
    let mut h = Harness::new(40);

    // Phase 1: two seconds of healthy play.
    h.run_until(SimTime::from_secs(2));
    let healthy_frames = h.frames(0);
    assert!(
        healthy_frames > 100,
        "game should be running ({healthy_frames})"
    );

    // Phase 2: the network dies for two seconds.
    h.set_link(false);
    h.run_until(SimTime::from_secs(4));
    let frames_during_outage = h.frames(0) - healthy_frames;
    // The local-lag window plus in-flight packets allow a handful of extra
    // frames, then the game must freeze (the paper's semantics).
    assert!(
        frames_during_outage < 30,
        "game should freeze during the outage, executed {frames_during_outage}"
    );

    // Phase 3: the network heals; the game must resume and catch up.
    h.set_link(true);
    h.run_until(SimTime::from_secs(7));
    let final_frames = h.frames(0).min(h.frames(1));
    assert!(
        final_frames > healthy_frames + 120,
        "game should resume after recovery ({final_frames})"
    );

    // Logical consistency must have survived the outage.
    let common = h.frames(0).min(h.frames(1));
    assert_eq!(
        h.hashes[0][..common],
        h.hashes[1][..common],
        "replicas diverged across the outage"
    );
}

#[test]
fn one_way_outage_also_freezes_both_sites() {
    // Only site0 -> site1 dies: site 1 stalls for lack of inputs, and site 0
    // then stalls waiting for site 1's subsequent inputs (lockstep is
    // symmetric in effect even under asymmetric failure).
    let mut h = Harness::new(40);
    h.run_until(SimTime::from_secs(2));
    let before = (h.frames(0), h.frames(1));

    h.net.borrow_mut().set_link_up(PeerId(0), PeerId(1), false);
    h.run_until(SimTime::from_secs(4));
    let during = (h.frames(0) - before.0, h.frames(1) - before.1);
    assert!(during.0 < 30, "site 0 should stall too, ran {}", during.0);
    assert!(during.1 < 30, "site 1 should stall, ran {}", during.1);

    h.net.borrow_mut().set_link_up(PeerId(0), PeerId(1), true);
    h.run_until(SimTime::from_secs(6));
    let common = h.frames(0).min(h.frames(1));
    assert!(common > before.0 + 60, "recovery failed");
    assert_eq!(h.hashes[0][..common], h.hashes[1][..common]);
}

#[test]
fn repeated_flapping_never_breaks_consistency() {
    let mut h = Harness::new(30);
    for cycle in 0..5u64 {
        let base = SimTime::from_millis(cycle * 1500);
        h.run_until(base + SimDuration::from_millis(1000));
        h.set_link(false);
        h.run_until(base + SimDuration::from_millis(1500));
        h.set_link(true);
    }
    h.run_until(SimTime::from_secs(10));
    let common = h.frames(0).min(h.frames(1));
    assert!(common > 300, "game should have made progress between flaps");
    assert_eq!(
        h.hashes[0][..common],
        h.hashes[1][..common],
        "replicas diverged under link flapping"
    );
}
