//! Full-stack integration: assembler → emulated console → lockstep session
//! → transport, end to end through the public API.

use coplay::net::{loopback, PeerId, UdpTransport};
use coplay::sync::{
    run_realtime, Idle, LockstepSession, RandomPresser, Scripted, SyncConfig, SyncError,
};
use coplay::vm::{assemble, Console, InputWord, Machine, Player};

/// Runs two sessions over the given transports until both executed
/// `frames`, returning each site's per-frame state hashes.
fn duel<M, T>(
    machine: impl Fn() -> M,
    transports: (T, T),
    frames: u64,
    fast: bool,
) -> Result<(Vec<u64>, Vec<u64>), SyncError>
where
    M: Machine + Send + 'static,
    T: coplay::net::Transport + Send + 'static,
{
    let mk_cfg = |site: u8| {
        let mut cfg = SyncConfig::two_player(site);
        if fast {
            cfg.cfps = 480; // keep wall time short in CI
        }
        cfg
    };
    let a = LockstepSession::new(
        mk_cfg(0),
        machine(),
        transports.0,
        RandomPresser::new(Player::ONE, 5),
    );
    let b = LockstepSession::new(
        mk_cfg(1),
        machine(),
        transports.1,
        RandomPresser::new(Player::TWO, 6),
    );
    let ja = std::thread::spawn(move || {
        let mut h = Vec::new();
        run_realtime(a, frames, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
    });
    let jb = std::thread::spawn(move || {
        let mut h = Vec::new();
        run_realtime(b, frames, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
    });
    Ok((ja.join().expect("thread a")?, jb.join().expect("thread b")?))
}

#[test]
fn hand_written_assembly_game_shared_over_loopback() {
    // A freshly authored cartridge: both players light pixels with their
    // buttons. Determinism comes solely from the Machine contract — the
    // sync layer knows nothing about the program ("game transparency").
    let source = r#"
        .title "Integration"
        .seed 99
        .equ COUNTER, 0x8000
        frame:
            in r0, 0
            ldi r1, COUNTER
            ldw r2, [r1]
            add r2, r0
            stw [r1], r2
            rnd r3
            ldi r1, 0
            sys 0
            mov r1, r2
            ldi r2, 20
            ldi r3, 40
            ldi r4, 7
            sys 4
            yield
            jmp frame
    "#;
    let rom = assemble(source).expect("assembles");
    let (ha, hb) = duel(
        || Console::new(rom.clone()),
        loopback(PeerId(0), PeerId(1)),
        48,
        true,
    )
    .expect("session");
    assert_eq!(ha, hb, "console replicas diverged");
}

#[test]
fn real_udp_sockets_carry_a_session() {
    let mut t0 = UdpTransport::bind(PeerId(0), "127.0.0.1:0").expect("bind");
    let mut t1 = UdpTransport::bind(PeerId(1), "127.0.0.1:0").expect("bind");
    let a0 = t0.local_addr().expect("addr");
    let a1 = t1.local_addr().expect("addr");
    t0.add_peer(PeerId(1), a1).expect("peer");
    t1.add_peer(PeerId(0), a0).expect("peer");
    let (ha, hb) = duel(coplay::games::Pong::new, (t0, t1), 48, true).expect("session");
    assert_eq!(ha, hb, "replicas diverged over real UDP");
}

#[test]
fn rom_mismatch_refuses_to_start() {
    // Site 1 loads a different cartridge; the handshake must detect it.
    let rom_a = assemble(".title \"A\"\nnop\nyield\njmp 0").expect("a");
    let rom_b = assemble(".title \"B\"\nnop\nnop\nyield\njmp 0").expect("b");
    let (ta, tb) = loopback(PeerId(0), PeerId(1));
    let mut a = LockstepSession::new(SyncConfig::two_player(0), Console::new(rom_a), ta, Idle);
    let mut b = LockstepSession::new(SyncConfig::two_player(1), Console::new(rom_b), tb, Idle);
    use coplay::clock::SimTime;
    // b hellos with its hash; a must reject.
    let _ = b.tick(SimTime::ZERO).expect("b sends hello");
    let err = a.tick(SimTime::ZERO).expect_err("mismatch must be fatal");
    assert!(matches!(err, SyncError::RomMismatch { .. }), "{err}");
}

#[test]
fn scripted_traces_replay_identically_across_the_network() {
    // Recorded traces (a "demo playback" scenario): both sites replay a
    // fixed script; the resulting game must equal a local replay.
    let trace_p1: Vec<InputWord> = (0..60u32)
        .map(|f| InputWord::for_player(Player::ONE, (f % 4) as u8))
        .collect();
    let trace_p2: Vec<InputWord> = (0..60u32)
        .map(|f| InputWord::for_player(Player::TWO, ((f / 2) % 4) as u8))
        .collect();

    // Local reference: merge the traces directly (with the 6-frame lag the
    // protocol applies).
    let mut reference = coplay::games::Pong::new();
    let mut ref_hashes = Vec::new();
    for f in 0..48usize {
        let lagged = f.checked_sub(6);
        let merged = match lagged {
            Some(l) => trace_p1[l].merged(trace_p2[l]),
            None => InputWord::NONE,
        };
        reference.step_frame(merged);
        ref_hashes.push(reference.state_hash());
    }

    // Networked run with the same scripts.
    let (ta, tb) = loopback(PeerId(0), PeerId(1));
    let mk_cfg = |site: u8| {
        let mut cfg = SyncConfig::two_player(site);
        cfg.cfps = 480;
        cfg
    };
    let a = LockstepSession::new(
        mk_cfg(0),
        coplay::games::Pong::new(),
        ta,
        Scripted::new(trace_p1),
    );
    let b = LockstepSession::new(
        mk_cfg(1),
        coplay::games::Pong::new(),
        tb,
        Scripted::new(trace_p2),
    );
    let ja = std::thread::spawn(move || {
        let mut h = Vec::new();
        run_realtime(a, 48, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
    });
    let jb = std::thread::spawn(move || {
        let mut h = Vec::new();
        run_realtime(b, 48, |r, _| h.push(r.state_hash.unwrap())).map(|_| h)
    });
    let ha = ja.join().expect("a").expect("a ran");
    let hb = jb.join().expect("b").expect("b ran");
    assert_eq!(ha, hb, "network replicas diverged");
    assert_eq!(ha, ref_hashes, "networked game differs from local replay");
}

#[test]
fn lossy_experiment_records_stalls_and_retransmissions() {
    use coplay::clock::SimDuration;
    use coplay::sim::{run_experiment, ExperimentConfig};
    use coplay::telemetry::EventKind;

    // The paper's past-the-threshold regime: 200 ms RTT with 5% loss. The
    // local lag (6 frames ≈ 100 ms) cannot hide a 100 ms one-way delay, so
    // the session must stall, and loss must force retransmissions.
    let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(200));
    cfg.game = coplay::games::GameId::Pong;
    cfg.frames = 360;
    cfg.loss = 0.05;
    cfg.telemetry = true;
    let r = run_experiment(cfg).expect("lossy run completes");
    assert!(r.converged, "loss must not break logical consistency");

    let master = &r.telemetry[0];
    let events = master.events();
    assert!(!events.is_empty(), "recording sink captured nothing");

    // The dump is non-empty JSONL with monotonically non-decreasing stamps.
    let dump = master.dump_jsonl();
    assert!(!dump.is_empty());
    let mut last_t = 0u64;
    for line in dump.lines() {
        assert!(
            line.starts_with("{\"t_us\":") && line.ends_with('}'),
            "{line}"
        );
        let t: u64 = line["{\"t_us\":".len()..]
            .split(',')
            .next()
            .and_then(|s| s.parse().ok())
            .expect("timestamp parses");
        assert!(
            t >= last_t,
            "timestamps must be non-decreasing: {t} < {last_t}"
        );
        last_t = t;
    }

    // Stalls were recorded (begin and end), and messages carried resent
    // frames in both directions of the protocol.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::StallBegin { .. })),
        "200ms RTT must stall a 100ms local lag"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::StallEnd { .. })));
    assert!(
        events.iter().any(
            |e| matches!(e.kind, EventKind::InputSent { retransmitted, .. } if retransmitted > 0)
        ),
        "5% loss must force retransmissions"
    );
    assert!(master.counter("retransmitted_frames_sent_total") > 0);
    assert!(master.counter("stalls_total") > 0);

    // The Prometheus exposition reports the frame-time quantiles.
    let prom = master.prometheus();
    assert!(
        prom.contains("coplay_frame_time_us{quantile=\"0.5\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("coplay_frame_time_us{quantile=\"0.95\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("coplay_frame_time_us{quantile=\"0.99\"}"),
        "{prom}"
    );
    // Quantiles are answerable (0 is legitimate: in virtual time a frame
    // whose inputs are already buffered begins and executes at one instant).
    let p50 = master
        .percentile("frame_time_us", 0.5)
        .expect("samples exist");
    let p99 = master
        .percentile("frame_time_us", 0.99)
        .expect("samples exist");
    assert!(p99 >= p50);
    assert!(master.counter("frames_total") > 0);

    // The network fabric saw the loss process.
    assert!(r.net_telemetry.counter("packets_dropped_total") > 0);
}

#[test]
fn clean_experiment_records_no_stalls() {
    use coplay::clock::SimDuration;
    use coplay::sim::{run_experiment, ExperimentConfig};
    use coplay::telemetry::EventKind;

    // 40 ms RTT is well inside the local lag: every remote input arrives
    // early, so the flight recorders must contain no stall events at all.
    let mut cfg = ExperimentConfig::with_rtt(SimDuration::from_millis(40));
    cfg.game = coplay::games::GameId::Pong;
    cfg.frames = 240;
    cfg.telemetry = true;
    let r = run_experiment(cfg).expect("clean run completes");
    assert!(r.converged);
    for (i, t) in r.telemetry.iter().enumerate() {
        assert!(t.event_count() > 0, "site {i} recorded nothing");
        assert!(
            !t.events().iter().any(|e| matches!(
                e.kind,
                EventKind::StallBegin { .. } | EventKind::StallEnd { .. }
            )),
            "site {i} stalled on a clean link"
        );
        assert_eq!(t.counter("stalls_total"), 0, "site {i}");
    }
    assert_eq!(r.net_telemetry.counter("packets_dropped_total"), 0);
}

#[test]
fn stopping_a_session_notifies_the_peer() {
    let (ta, tb) = loopback(PeerId(0), PeerId(1));
    let mut cfg0 = SyncConfig::two_player(0);
    cfg0.cfps = 480;
    let mut cfg1 = SyncConfig::two_player(1);
    cfg1.cfps = 480;
    let mut a = LockstepSession::new(cfg0, coplay::games::Pong::new(), ta, Idle);
    let b = LockstepSession::new(cfg1, coplay::games::Pong::new(), tb, Idle);

    // Run b on a thread until it reports the peer left.
    let jb = std::thread::spawn(move || match run_realtime(b, u64::MAX, |_, _| {}) {
        Ok((outcome, _)) => outcome,
        Err(e) => panic!("b failed: {e}"),
    });
    // Let the session establish and run a moment, then quit site a.
    std::thread::sleep(std::time::Duration::from_millis(100));
    use coplay::clock::{Clock, SystemClock};
    let clock = SystemClock::new();
    for _ in 0..50 {
        let _ = a.tick(clock.now());
    }
    a.stop().expect("stop");
    let outcome = jb.join().expect("b thread");
    assert_eq!(
        outcome,
        coplay::sync::RunOutcome::Stopped(coplay::sync::StopReason::PeerLeft)
    );
}
