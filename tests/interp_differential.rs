//! Differential golden-hash tests for the predecoded-dispatch interpreter.
//!
//! The fast path is only allowed to exist because it is byte-for-byte
//! equivalent to the reference fetch–decode–execute loop. These tests pin
//! that equivalence where it matters: every bundled ROM game, frame by
//! frame, including through a forced rollback/resimulate, plus a
//! self-modifying program that would expose any stale decode-cache slot.

use coplay_games::{rom_pong_console, rom_race_console};
use coplay_vm::{
    Console, InputWord, Instruction, InterpMode, Machine, Reg, Rom, DEFAULT_CYCLES_PER_FRAME,
};

const FRAMES: u64 = 120;

/// Deterministic per-frame input pattern exercising several buttons.
fn input_for(frame: u64) -> InputWord {
    let mut z = frame.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    InputWord((z as u32) & 0x0F0F)
}

fn pairs() -> Vec<(&'static str, Console, Console)> {
    vec![
        (
            "ROM Pong",
            rom_pong_console(),
            rom_pong_console().with_interp_mode(InterpMode::Reference),
        ),
        (
            "Button Race",
            rom_race_console(),
            rom_race_console().with_interp_mode(InterpMode::Reference),
        ),
    ]
}

#[test]
fn every_rom_game_hashes_identically_with_cache_on_and_off() {
    for (name, mut fast, mut slow) in pairs() {
        assert_eq!(fast.interp_mode(), InterpMode::Predecoded);
        assert_eq!(slow.interp_mode(), InterpMode::Reference);
        for frame in 0..FRAMES {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
            assert_eq!(
                fast.state_hash(),
                slow.state_hash(),
                "{name}: state diverged at frame {frame}"
            );
        }
        let stats = fast.interp_stats().expect("console reports stats");
        assert!(
            stats.hits > stats.misses,
            "{name}: a real game must run mostly warm (hits {} misses {})",
            stats.hits,
            stats.misses
        );
    }
}

#[test]
fn rollback_resimulation_hashes_identically_with_cache_on_and_off() {
    for (name, mut fast, mut slow) in pairs() {
        // Run to a checkpoint, snapshot both replicas.
        for frame in 0..40 {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
        }
        let snap_fast = fast.save_state();
        let snap_slow = slow.save_state();
        assert_eq!(snap_fast, snap_slow, "{name}: snapshots must be identical");

        // Speculate ahead on one input stream (the misprediction branch)...
        for frame in 40..60 {
            let input = input_for(frame * 7 + 1);
            fast.step_frame(input);
            slow.step_frame(input);
        }

        // ...then roll both back and resimulate with the corrected inputs,
        // exactly what RollbackSession::perform_rollback does.
        fast.load_state(&snap_fast).unwrap();
        slow.load_state(&snap_slow).unwrap();
        assert_eq!(
            fast.state_hash(),
            slow.state_hash(),
            "{name}: hashes diverged right after restore"
        );
        for frame in 40..80 {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
            assert_eq!(
                fast.state_hash(),
                slow.state_hash(),
                "{name}: resimulation diverged at frame {frame}"
            );
        }

        let stats = fast.interp_stats().expect("console reports stats");
        assert!(
            stats.flushes >= 1,
            "{name}: the image load must flush (saw {})",
            stats.flushes
        );
        assert!(
            stats.invalidations > 0,
            "{name}: the restore must invalidate slots covering changed memory"
        );
    }
}

/// A program that patches its own instruction stream every frame: it
/// stores the frame counter into the immediate of a later `ldi`, so a
/// cached decode of that slot goes stale the moment it is overwritten.
fn smc_rom() -> Rom {
    let program: Vec<u8> = [
        Instruction::In(Reg(4), 2),          // 0x00: r4 = frame counter low
        Instruction::Ldi(Reg(3), 0x12),      // 0x04: address of the imm low byte below
        Instruction::Stb(Reg(3), Reg(4), 0), // 0x08: patch the ldi
        Instruction::Nop,                    // 0x0C
        Instruction::Ldi(Reg(1), 0xAA00),    // 0x10: imm low byte lives at 0x12
        Instruction::Yield,                  // 0x14
        Instruction::Jmp(0),                 // 0x18
    ]
    .iter()
    .flat_map(|i| i.encode())
    .collect();
    Rom::builder("SMC Probe").image(program).build()
}

#[test]
fn self_modifying_code_invalidates_precisely_and_stays_equivalent() {
    let mut fast = Console::new(smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME);
    let mut slow = Console::new(smc_rom()).with_interp_mode(InterpMode::Reference);

    for frame in 0..200u64 {
        fast.step_frame(InputWord::NONE);
        slow.step_frame(InputWord::NONE);
        assert_eq!(
            fast.state_hash(),
            slow.state_hash(),
            "state diverged at frame {frame}"
        );
        // The patched `ldi` must load the freshly stored byte, proving the
        // warm slot was re-decoded, not replayed: on frame f the program
        // reads frame counter f and executes `ldi r1, 0xAA00 | (f & 0xFF)`.
        let expect = 0xAA00 | (frame as u16 & 0x00FF);
        assert_eq!(fast.cpu().reg(Reg(1)), expect, "frame {frame}");
        assert_eq!(slow.cpu().reg(Reg(1)), expect, "frame {frame}");
    }

    let stats = fast.interp_stats().expect("console reports stats");
    assert!(
        stats.invalidations >= 200,
        "each frame's store must invalidate (saw {})",
        stats.invalidations
    );
    // The patched slot re-decodes every frame, so misses keep growing well
    // past the program's static instruction count.
    assert!(
        stats.misses >= 200,
        "stale slots must re-decode (saw {} misses)",
        stats.misses
    );
}
