//! Differential golden-hash tests for the predecoded-dispatch interpreter.
//!
//! The fast path is only allowed to exist because it is byte-for-byte
//! equivalent to the reference fetch–decode–execute loop. These tests pin
//! that equivalence where it matters: every bundled ROM game, frame by
//! frame, including through a forced rollback/resimulate, plus a
//! self-modifying program that would expose any stale decode-cache slot.

use coplay_games::{rom_pong_console, rom_race_console};
use coplay_vm::{
    Console, InputWord, Instruction, InterpMode, Machine, Reg, Rom, StepMode,
    DEFAULT_CYCLES_PER_FRAME,
};

const FRAMES: u64 = 120;

type MakeConsole = fn() -> Console;

/// Deterministic per-frame input pattern exercising several buttons.
fn input_for(frame: u64) -> InputWord {
    let mut z = frame.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    InputWord((z as u32) & 0x0F0F)
}

fn pairs() -> Vec<(&'static str, Console, Console)> {
    vec![
        (
            "ROM Pong",
            rom_pong_console(),
            rom_pong_console().with_interp_mode(InterpMode::Reference),
        ),
        (
            "Button Race",
            rom_race_console(),
            rom_race_console().with_interp_mode(InterpMode::Reference),
        ),
    ]
}

#[test]
fn every_rom_game_hashes_identically_with_cache_on_and_off() {
    for (name, mut fast, mut slow) in pairs() {
        assert_eq!(fast.interp_mode(), InterpMode::Predecoded);
        assert_eq!(slow.interp_mode(), InterpMode::Reference);
        for frame in 0..FRAMES {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
            assert_eq!(
                fast.state_hash(),
                slow.state_hash(),
                "{name}: state diverged at frame {frame}"
            );
        }
        let stats = fast.interp_stats().expect("console reports stats");
        assert!(
            stats.hits > stats.misses,
            "{name}: a real game must run mostly warm (hits {} misses {})",
            stats.hits,
            stats.misses
        );
    }
}

#[test]
fn rollback_resimulation_hashes_identically_with_cache_on_and_off() {
    for (name, mut fast, mut slow) in pairs() {
        // Run to a checkpoint, snapshot both replicas.
        for frame in 0..40 {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
        }
        let snap_fast = fast.save_state();
        let snap_slow = slow.save_state();
        assert_eq!(snap_fast, snap_slow, "{name}: snapshots must be identical");

        // Speculate ahead on one input stream (the misprediction branch)...
        for frame in 40..60 {
            let input = input_for(frame * 7 + 1);
            fast.step_frame(input);
            slow.step_frame(input);
        }

        // ...then roll both back and resimulate with the corrected inputs,
        // exactly what RollbackSession::perform_rollback does.
        fast.load_state(&snap_fast).unwrap();
        slow.load_state(&snap_slow).unwrap();
        assert_eq!(
            fast.state_hash(),
            slow.state_hash(),
            "{name}: hashes diverged right after restore"
        );
        for frame in 40..80 {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
            assert_eq!(
                fast.state_hash(),
                slow.state_hash(),
                "{name}: resimulation diverged at frame {frame}"
            );
        }

        let stats = fast.interp_stats().expect("console reports stats");
        assert!(
            stats.flushes >= 1,
            "{name}: the image load must flush (saw {})",
            stats.flushes
        );
        assert!(
            stats.invalidations > 0,
            "{name}: the restore must invalidate slots covering changed memory"
        );
    }
}

/// The full interpreter × stepping matrix. Every combination of
/// {Predecoded, Reference} × {Present, Headless} must hold the same
/// core state hash on every frame — including through a forced
/// rollback/restore — because headless stepping only skips *rendering*
/// side effects, never architectural ones.
#[test]
fn interp_and_step_mode_matrix_stays_hash_identical_through_rollback() {
    let builds: [(&str, MakeConsole); 2] = [
        ("ROM Pong", rom_pong_console as MakeConsole),
        ("Button Race", rom_race_console as MakeConsole),
    ];
    for (name, build) in builds {
        // Index 0 is the oracle: reference interpreter, presented frames.
        let mut lanes: Vec<(String, Console, StepMode)> = vec![
            (
                format!("{name}/Reference/Present"),
                build().with_interp_mode(InterpMode::Reference),
                StepMode::Present,
            ),
            (
                format!("{name}/Reference/Headless"),
                build().with_interp_mode(InterpMode::Reference),
                StepMode::Headless,
            ),
            (
                format!("{name}/Predecoded/Present"),
                build(),
                StepMode::Present,
            ),
            (
                format!("{name}/Predecoded/Headless"),
                build(),
                StepMode::Headless,
            ),
        ];

        let check = |lanes: &[(String, Console, StepMode)], frame: u64| {
            let oracle = lanes[0].1.state_hash();
            for (label, console, _) in &lanes[1..] {
                assert_eq!(
                    console.state_hash(),
                    oracle,
                    "{label}: diverged from the oracle at frame {frame}"
                );
            }
        };

        for frame in 0..60 {
            let input = input_for(frame);
            for (_, console, mode) in lanes.iter_mut() {
                console.step_frame_mode(input, *mode);
            }
            check(&lanes, frame);
        }

        // Forced rollback: snapshot, speculate on wrong inputs, restore,
        // resimulate corrected — exactly what a repair pass does, with the
        // repair frames themselves stepped in each lane's own mode.
        let snaps: Vec<Vec<u8>> = lanes.iter().map(|(_, c, _)| c.save_state()).collect();
        for frame in 60..75 {
            let input = input_for(frame * 13 + 5);
            for (_, console, mode) in lanes.iter_mut() {
                console.step_frame_mode(input, *mode);
            }
        }
        for ((label, console, _), snap) in lanes.iter_mut().zip(&snaps) {
            console
                .load_state(snap)
                .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
        }
        check(&lanes, 60);
        for frame in 60..90 {
            let input = input_for(frame);
            for (_, console, mode) in lanes.iter_mut() {
                console.step_frame_mode(input, *mode);
            }
            check(&lanes, frame);
        }
    }
}

/// Headless repair must be invisible once a frame is presented: running
/// N-1 frames headless plus one presented frame leaves pixels, rendered
/// audio, and state byte-identical to an all-present run.
#[test]
fn headless_then_present_matches_an_all_present_run_exactly() {
    for (name, build) in [
        ("ROM Pong", rom_pong_console as MakeConsole),
        ("Button Race", rom_race_console as MakeConsole),
    ] {
        let mut repaired = build();
        let mut presented = build();
        const N: u64 = 48;
        for frame in 0..N {
            let input = input_for(frame);
            let mode = if frame + 1 == N {
                StepMode::Present
            } else {
                StepMode::Headless
            };
            repaired.step_frame_mode(input, mode);
            presented.step_frame(input);
        }
        assert_eq!(
            repaired.framebuffer().pixels(),
            presented.framebuffer().pixels(),
            "{name}: final presented pixels differ"
        );
        assert_eq!(
            repaired.audio_samples(),
            presented.audio_samples(),
            "{name}: final presented audio differs"
        );
        assert_eq!(repaired.state_hash(), presented.state_hash(), "{name}");
        assert_eq!(
            repaired.save_state(),
            presented.save_state(),
            "{name}: serialized state differs"
        );
    }
}

/// A program that patches its own instruction stream every frame: it
/// stores the frame counter into the immediate of a later `ldi`, so a
/// cached decode of that slot goes stale the moment it is overwritten.
fn smc_rom() -> Rom {
    let program: Vec<u8> = [
        Instruction::In(Reg(4), 2),          // 0x00: r4 = frame counter low
        Instruction::Ldi(Reg(3), 0x12),      // 0x04: address of the imm low byte below
        Instruction::Stb(Reg(3), Reg(4), 0), // 0x08: patch the ldi
        Instruction::Nop,                    // 0x0C
        Instruction::Ldi(Reg(1), 0xAA00),    // 0x10: imm low byte lives at 0x12
        Instruction::Yield,                  // 0x14
        Instruction::Jmp(0),                 // 0x18
    ]
    .iter()
    .flat_map(|i| i.encode())
    .collect();
    Rom::builder("SMC Probe").image(program).build()
}

#[test]
fn self_modifying_code_invalidates_precisely_and_stays_equivalent() {
    let mut fast = Console::new(smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME);
    let mut slow = Console::new(smc_rom()).with_interp_mode(InterpMode::Reference);

    for frame in 0..200u64 {
        fast.step_frame(InputWord::NONE);
        slow.step_frame(InputWord::NONE);
        assert_eq!(
            fast.state_hash(),
            slow.state_hash(),
            "state diverged at frame {frame}"
        );
        // The patched `ldi` must load the freshly stored byte, proving the
        // warm slot was re-decoded, not replayed: on frame f the program
        // reads frame counter f and executes `ldi r1, 0xAA00 | (f & 0xFF)`.
        let expect = 0xAA00 | (frame as u16 & 0x00FF);
        assert_eq!(fast.cpu().reg(Reg(1)), expect, "frame {frame}");
        assert_eq!(slow.cpu().reg(Reg(1)), expect, "frame {frame}");
    }

    let stats = fast.interp_stats().expect("console reports stats");
    assert!(
        stats.invalidations >= 200,
        "each frame's store must invalidate (saw {})",
        stats.invalidations
    );
    // The patched slot re-decodes every frame, so misses keep growing well
    // past the program's static instruction count.
    assert!(
        stats.misses >= 200,
        "stale slots must re-decode (saw {} misses)",
        stats.misses
    );
}

/// A self-modifying program whose store lands inside the *tail* of a
/// fused `ldi`+`ldi` pair. The fused slot lives at the head address, a
/// full instruction before the patched byte, so only the widened
/// (pair-aware) invalidation window catches it.
fn fused_smc_rom() -> Rom {
    let program: Vec<u8> = [
        Instruction::In(Reg(4), 2),          // 0x00: r4 = frame counter low
        Instruction::Ldi(Reg(3), 0x1A),      // 0x04: imm low byte of the pair's tail
        Instruction::Stb(Reg(3), Reg(4), 0), // 0x08: patch the fused tail
        Instruction::Nop,                    // 0x0C
        Instruction::Nop,                    // 0x10
        Instruction::Ldi(Reg(1), 0x5500),    // 0x14: fuses with the next ldi
        Instruction::Ldi(Reg(2), 0xAA00),    // 0x18: tail; imm low byte at 0x1A
        Instruction::Yield,                  // 0x1C
        Instruction::Jmp(0),                 // 0x20
    ]
    .iter()
    .flat_map(|i| i.encode())
    .collect();
    Rom::builder("Fused SMC Probe").image(program).build()
}

#[test]
fn store_into_a_fused_pair_tail_invalidates_the_whole_slot() {
    let mut fast = Console::new(fused_smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME);
    let mut slow = Console::new(fused_smc_rom()).with_interp_mode(InterpMode::Reference);

    for frame in 0..200u64 {
        fast.step_frame(InputWord::NONE);
        slow.step_frame(InputWord::NONE);
        assert_eq!(
            fast.state_hash(),
            slow.state_hash(),
            "state diverged at frame {frame}"
        );
        // The store lands at 0x1A, seven bytes past the fused slot's own
        // address (0x14). A naive exact-address invalidation would leave
        // that slot warm and replay the stale pair; the register value
        // proves the freshly patched immediate was decoded instead.
        let expect = 0xAA00 | (frame as u16 & 0x00FF);
        assert_eq!(fast.cpu().reg(Reg(2)), expect, "frame {frame}");
        assert_eq!(slow.cpu().reg(Reg(2)), expect, "frame {frame}");
        assert_eq!(fast.cpu().reg(Reg(1)), 0x5500, "frame {frame}");
    }

    let stats = fast.interp_stats().expect("console reports stats");
    assert!(
        stats.fused_hits > 0,
        "the ldi+ldi pair must actually fuse (saw {} fused hits)",
        stats.fused_hits
    );
    assert!(
        stats.invalidations >= 200,
        "each frame's store must invalidate (saw {})",
        stats.invalidations
    );
}

/// Dirty-bitmap fuzz lanes: the bitmap-guided capture stream and the
/// bitmap-guided ring restore must stay byte-identical to a full-image
/// scan of the `InterpMode::Reference` oracle — through a forced
/// rollback, plain self-modifying code, and a fused-pair-tail patch.
///
/// Each lane keeps ONE dirty capture stream (`tail`) alive on the fast
/// console, rewritten in place from the reported dirty ranges every
/// frame, and diffs it against the reference console's full scan. A
/// mid-run `load_state` checks the saturate-on-restore contract: the
/// very next dirty capture must absorb the whole image.
#[test]
fn dirty_capture_stays_byte_identical_to_reference_full_scan() {
    let lanes: [(&str, MakeConsole); 4] = [
        ("ROM Pong", rom_pong_console),
        ("Button Race", rom_race_console),
        ("SMC Probe", || {
            Console::new(smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME)
        }),
        ("Fused SMC Probe", || {
            Console::new(fused_smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME)
        }),
    ];
    for (name, build) in lanes {
        let mut fast = build();
        let mut slow = build().with_interp_mode(InterpMode::Reference);

        let mut tail = Vec::new();
        fast.save_state_into(&mut tail);
        let mut dirty = coplay_vm::DirtyPages::default();
        let mut full = Vec::new();
        let mut snap = None;
        for frame in 0..90u64 {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
            fast.collect_dirty_into(&mut dirty);
            fast.save_state_ranges_into(&mut tail, &dirty);
            full.clear();
            slow.save_state_into(&mut full);
            assert_eq!(
                tail, full,
                "{name}: dirty capture diverged from the reference full scan at frame {frame}"
            );
            if frame == 40 {
                snap = Some(full.clone());
            }
            if frame == 70 {
                // Forced rollback: a full-image load must saturate the
                // accumulators so the next dirty capture rewrites all of
                // `tail`, not just the resimulated frame's pages.
                let snap = snap.as_ref().expect("snapshot taken at frame 40");
                fast.load_state(snap).unwrap();
                slow.load_state(snap).unwrap();
                fast.collect_dirty_into(&mut dirty);
                fast.save_state_ranges_into(&mut tail, &dirty);
                full.clear();
                slow.save_state_into(&mut full);
                assert_eq!(
                    tail, full,
                    "{name}: capture stream incoherent right after a full restore"
                );
            }
        }
    }
}

/// Bitmap-guided ring restores land on exactly the state the reference
/// interpreter reaches, for both ROM games and both self-modifying
/// probes, across a rollback depth that crosses checkpoint boundaries.
#[test]
fn bitmap_guided_ring_restore_matches_reference_resimulation() {
    let lanes: [(&str, MakeConsole); 4] = [
        ("ROM Pong", rom_pong_console),
        ("Button Race", rom_race_console),
        ("SMC Probe", || {
            Console::new(smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME)
        }),
        ("Fused SMC Probe", || {
            Console::new(fused_smc_rom()).with_cycle_budget(DEFAULT_CYCLES_PER_FRAME)
        }),
    ];
    for (name, build) in lanes {
        let mut fast = build();
        let mut slow = build().with_interp_mode(InterpMode::Reference);
        let mut ring = coplay_rollback::SnapshotRing::new(12);

        for frame in 0..60u64 {
            let input = input_for(frame);
            fast.step_frame(input);
            slow.step_frame(input);
            if frame % 4 == 0 {
                ring.checkpoint_from(frame, fast.state_hash(), &mut fast);
            }
        }

        // Rewind the fast console to the floor checkpoint of frame 49 with
        // the O(dirty) path; rewind the oracle by replaying from scratch.
        let mut dirty = coplay_vm::DirtyPages::default();
        fast.collect_dirty_into(&mut dirty);
        let mut buf = Vec::new();
        let info = ring.rewind_into(49, &mut buf, &mut dirty).unwrap();
        assert_eq!(info.frame, 48, "{name}: floor checkpoint");
        fast.load_state_dirty(&buf, &dirty).unwrap();

        let mut oracle = build().with_interp_mode(InterpMode::Reference);
        for frame in 0..49u64 {
            oracle.step_frame(input_for(frame));
        }
        assert_eq!(
            fast.state_hash(),
            oracle.state_hash(),
            "{name}: bitmap-guided restore diverged from a from-scratch replay"
        );

        // Resimulate with corrected inputs on both interpreters; the
        // restored fast console must track the reference exactly.
        slow.load_state(&fast.save_state()).unwrap();
        for frame in 49..80u64 {
            let input = input_for(frame * 3 + 1);
            fast.step_frame(input);
            slow.step_frame(input);
            assert_eq!(
                fast.state_hash(),
                slow.state_hash(),
                "{name}: post-restore resimulation diverged at frame {frame}"
            );
        }
    }
}
