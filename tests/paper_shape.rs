//! Regression guard on the paper's headline results: the *shape* of
//! Figures 1 and 2 must survive refactoring.
//!
//! Uses shortened runs (600 frames/point) so the guard is cheap in CI; the
//! full 3600-frame sweeps live in `coplay-bench` and EXPERIMENTS.md.

use coplay::clock::SimDuration;
use coplay::games::GameId;
use coplay::sim::{run_sweep, threshold_rtt, ExperimentConfig};

fn base() -> ExperimentConfig {
    ExperimentConfig {
        frames: 600,
        game: GameId::Pong,
        ..ExperimentConfig::default()
    }
}

#[test]
fn figure_1_shape_holds() {
    let points: Vec<SimDuration> = [0u64, 60, 120, 160, 240, 320, 400]
        .into_iter()
        .map(SimDuration::from_millis)
        .collect();
    let rows = run_sweep(&base(), &points, |_, _| {}).expect("sweep");

    // (a) A full-speed plateau: 60 FPS with sub-millisecond deviation at
    //     every point the paper calls comfortably playable.
    for row in rows.iter().take(3) {
        let ft = row.result.master_frame_time_ms();
        assert!(
            (ft - 16.667).abs() < 0.3,
            "RTT {} should be at 60fps, got {ft}ms",
            row.rtt
        );
        assert!(
            row.result.worst_deviation_ms() < 2.0,
            "RTT {} deviation {} too high for the plateau",
            row.rtt,
            row.result.worst_deviation_ms()
        );
    }

    // (b) A threshold exists: beyond some RTT the game visibly slows.
    let th = threshold_rtt(&rows, 16.667, 0.5).expect("plateau exists");
    assert!(
        th >= SimDuration::from_millis(120),
        "threshold {th} implausibly low (paper: 140ms, ours ~190ms)"
    );
    assert!(
        th < SimDuration::from_millis(400),
        "threshold never reached — the latency budget model is broken"
    );

    // (c) Graceful degradation: frame time grows monotonically (within
    //     noise) past the threshold, and the game still converges.
    let ft: Vec<f64> = rows
        .iter()
        .map(|r| r.result.master_frame_time_ms())
        .collect();
    assert!(
        ft[6] > ft[4] && ft[6] > ft[0] + 5.0,
        "400ms RTT must be clearly slower: {ft:?}"
    );
    assert!(rows.iter().all(|r| r.result.converged));
}

#[test]
fn figure_2_shape_holds() {
    let points: Vec<SimDuration> = [20u64, 80, 140, 320]
        .into_iter()
        .map(SimDuration::from_millis)
        .collect();
    let rows = run_sweep(&base(), &points, |_, _| {}).expect("sweep");

    // Below the threshold: single-digit-ms synchrony (paper: <10ms).
    for row in rows.iter().take(3) {
        assert!(
            row.result.synchrony_ms < 12.0,
            "RTT {}: synchrony {} should be tight below the threshold",
            row.rtt,
            row.result.synchrony_ms
        );
    }
    // Far past it: the sites visibly separate (paper: "quickly goes up").
    assert!(
        rows[3].result.synchrony_ms > 25.0,
        "RTT 320ms: synchrony {} should have blown up",
        rows[3].result.synchrony_ms
    );
}

#[test]
fn section_4_2_budget_direction_holds() {
    // Doubling the sender-side overheads must not *raise* the threshold.
    let lean = ExperimentConfig {
        send_interval: SimDuration::ZERO,
        tx_slice: SimDuration::ZERO,
        ..base()
    };
    let heavy = ExperimentConfig {
        send_interval: SimDuration::from_millis(40),
        tx_slice: SimDuration::from_millis(30),
        ..base()
    };
    let points: Vec<SimDuration> = (8..=24).map(|i| SimDuration::from_millis(i * 10)).collect();
    let lean_rows = run_sweep(&lean, &points, |_, _| {}).expect("lean");
    let heavy_rows = run_sweep(&heavy, &points, |_, _| {}).expect("heavy");
    let lean_th = threshold_rtt(&lean_rows, 16.667, 0.5).expect("lean plateau");
    let heavy_th = threshold_rtt(&heavy_rows, 16.667, 0.5).expect("heavy plateau");
    assert!(
        heavy_th < lean_th,
        "heavier overheads must lower the threshold ({heavy_th} vs {lean_th})"
    );
}
