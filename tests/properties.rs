//! Property-based tests (proptest) on the core data structures and
//! invariants the paper's correctness rests on.

use proptest::prelude::*;

use coplay::clock::{SimDelta, SimDuration, SimTime};
use coplay::net::{NetemChannel, NetemConfig};
use coplay::sync::{InputBuffer, InputMsg, InputSync, Message, SyncConfig};
use coplay::vm::{assemble, Instruction, InputWord, PortMap, Reg, Syscall};

// ---------------------------------------------------------------------------
// Wire protocol: decode(encode(m)) == m for arbitrary messages, and decode
// never panics on arbitrary bytes.
// ---------------------------------------------------------------------------

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u8>(), any::<u64>(), any::<u64>(), proptest::collection::vec(any::<u32>(), 0..64))
            .prop_map(|(from, ack, first, inputs)| Message::Input(InputMsg {
                from,
                ack,
                first,
                inputs: inputs.into_iter().map(InputWord).collect(),
            })),
        (any::<u8>(), any::<u64>(), any::<bool>()).prop_map(|(site, rom_hash, observer)| {
            Message::Hello {
                site,
                rom_hash,
                observer,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(rom_hash, start_frame)| Message::HelloAck {
            rom_hash,
            start_frame
        }),
        any::<u32>().prop_map(|nonce| Message::Ping { nonce }),
        any::<u32>().prop_map(|nonce| Message::Pong { nonce }),
        Just(Message::SnapshotRequest),
        (any::<u64>(), any::<u32>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(frame, offset, total, bytes)| Message::SnapshotChunk {
                frame,
                offset,
                total,
                bytes: bytes::Bytes::from(bytes),
            }),
        Just(Message::Bye),
        (any::<u8>(), any::<u64>()).prop_map(|(site, frame)| Message::TimeStamp { site, frame }),
    ]
}

proptest! {
    #[test]
    fn wire_roundtrip(msg in arb_message()) {
        let encoded = msg.encode();
        prop_assert_eq!(Message::decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes); // must not panic, result irrelevant
    }

    #[test]
    fn wire_decode_survives_truncation(msg in arb_message(), cut in 0usize..64) {
        let mut encoded = msg.encode();
        let keep = encoded.len().saturating_sub(cut);
        encoded.truncate(keep);
        let _ = Message::decode(&encoded); // must not panic
    }
}

// ---------------------------------------------------------------------------
// Input buffer: duplicates never alter the first-written value; merge only
// ever exposes bits owned by some site.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn input_buffer_first_write_wins(
        ops in proptest::collection::vec((0u64..64, 0u8..2, any::<u32>()), 1..200)
    ) {
        let mut buf = InputBuffer::new(2);
        let mut expected: std::collections::HashMap<(u64, u8), u32> =
            std::collections::HashMap::new();
        for (frame, site, word) in ops {
            buf.set_partial(frame, site, InputWord(word));
            expected.entry((frame, site)).or_insert(word);
        }
        for ((frame, site), word) in expected {
            prop_assert_eq!(buf.partial(frame, site), InputWord(word));
        }
    }

    #[test]
    fn merge_never_leaks_unowned_bits(
        w0 in any::<u32>(), w1 in any::<u32>()
    ) {
        let map = PortMap::two_player();
        let mut buf = InputBuffer::new(2);
        buf.set_partial(0, 0, InputWord(w0));
        buf.set_partial(0, 1, InputWord(w1));
        let merged = buf.merged(0, &map);
        prop_assert_eq!(merged.0 & !map.assigned_mask(), 0);
        // And each site's owned bits pass through exactly.
        prop_assert_eq!(merged.0 & map.site_mask(0), w0 & map.site_mask(0));
        prop_assert_eq!(merged.0 & map.site_mask(1), w1 & map.site_mask(1));
    }
}

// ---------------------------------------------------------------------------
// Lockstep invariant: under ANY delivery schedule (drop, duplicate, delay),
// the two engines deliver identical input sequences, frame by frame.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn lockstep_sequences_identical_under_arbitrary_delivery(
        inputs_a in proptest::collection::vec(any::<u8>(), 40),
        inputs_b in proptest::collection::vec(any::<u8>(), 40),
        // For each (frame, direction): 0 = deliver now, 1 = drop (rely on
        // retransmission), 2 = deliver twice.
        fates in proptest::collection::vec((0u8..3, 0u8..3), 40),
    ) {
        let mut a = InputSync::new(SyncConfig::two_player(0));
        let mut b = InputSync::new(SyncConfig::two_player(1));
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for f in 0..40u64 {
            let t = SimTime::from_millis(f * 25);
            a.begin_frame(f, InputWord(inputs_a[f as usize] as u32), t);
            b.begin_frame(f, InputWord((inputs_b[f as usize] as u32) << 8), t);
            let (fa, fb) = fates[f as usize];
            for (_, m) in a.outgoing(t) {
                match fa { 0 => b.on_message(&m, t), 2 => { b.on_message(&m, t); b.on_message(&m, t); }, _ => {} }
            }
            for (_, m) in b.outgoing(t) {
                match fb { 0 => a.on_message(&m, t), 2 => { a.on_message(&m, t); a.on_message(&m, t); }, _ => {} }
            }
            // Drain with retransmissions until both are ready (bounded).
            let mut spins = 0;
            let mut tt = t;
            while !(a.ready() && b.ready()) {
                spins += 1;
                prop_assert!(spins < 100, "no progress at frame {}", f);
                tt += SimDuration::from_millis(25);
                for (_, m) in a.outgoing(tt) { b.on_message(&m, tt); }
                for (_, m) in b.outgoing(tt) { a.on_message(&m, tt); }
            }
            seq_a.push(a.take());
            seq_b.push(b.take());
        }
        prop_assert_eq!(seq_a, seq_b);
    }
}

// ---------------------------------------------------------------------------
// Assembler: the disassembly (Display) of any instruction re-assembles to
// the identical encoding — a full round trip through text.
// ---------------------------------------------------------------------------

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let reg = || (0u8..16).prop_map(Reg);
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Halt),
        Just(Instruction::Yield),
        Just(Instruction::Ret),
        (reg(), any::<u16>()).prop_map(|(r, i)| Instruction::Ldi(r, i)),
        (reg(), reg()).prop_map(|(a, b)| Instruction::Mov(a, b)),
        (reg(), reg()).prop_map(|(a, b)| Instruction::Add(a, b)),
        (reg(), reg()).prop_map(|(a, b)| Instruction::Mul(a, b)),
        (reg(), reg()).prop_map(|(a, b)| Instruction::Div(a, b)),
        (reg(), any::<u16>()).prop_map(|(r, i)| Instruction::Addi(r, i)),
        (reg(), any::<u16>()).prop_map(|(r, i)| Instruction::Cmpi(r, i)),
        (reg(), 0u16..16).prop_map(|(r, i)| Instruction::Shli(r, i)),
        any::<u16>().prop_map(Instruction::Jmp),
        any::<u16>().prop_map(Instruction::Jz),
        any::<u16>().prop_map(Instruction::Call),
        (reg(), reg(), any::<u8>()).prop_map(|(a, b, o)| Instruction::Ldw(a, b, o)),
        (reg(), reg(), any::<u8>()).prop_map(|(a, b, o)| Instruction::Stw(a, b, o)),
        reg().prop_map(Instruction::Push),
        reg().prop_map(Instruction::Pop),
        (reg(), any::<u8>()).prop_map(|(r, p)| Instruction::In(r, p)),
        reg().prop_map(Instruction::Rnd),
        (0u8..5).prop_map(|n| Instruction::Sys(Syscall::from_u8(n).unwrap())),
    ]
}

proptest! {
    #[test]
    fn assembler_roundtrips_disassembly(instrs in proptest::collection::vec(arb_instruction(), 1..40)) {
        let source: String = instrs.iter().map(|i| format!("{i}\n")).collect();
        let rom = assemble(&source).expect("disassembly must re-assemble");
        let expected: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        prop_assert_eq!(rom.image(), &expected[..]);
    }

    #[test]
    fn instruction_decode_never_panics(bytes in any::<[u8; 4]>()) {
        if let Some(i) = Instruction::decode(bytes) {
            // Legal decodings re-encode to a decodable form (not necessarily
            // the same bytes: unused fields are normalized to zero).
            prop_assert_eq!(Instruction::decode(i.encode()), Some(i));
        }
    }
}

// ---------------------------------------------------------------------------
// Netem: deliveries never travel back in time, and never before the base
// delay on the reorder-free path.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn netem_deliveries_are_causal(
        delay_ms in 0u64..200,
        jitter_ms in 0u64..50,
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let cfg = NetemConfig::new()
            .delay(SimDuration::from_millis(delay_ms))
            .jitter(SimDuration::from_millis(jitter_ms))
            .loss(loss);
        let mut ch = NetemChannel::new(cfg, seed);
        for i in 0..200u64 {
            let now = SimTime::from_millis(i * 3);
            let fate = ch.process(now, 64);
            for d in &fate.deliveries {
                prop_assert!(*d >= now, "delivery {d} before send {now}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Time arithmetic sanity.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn time_offset_roundtrip(base in 0u64..u64::MAX / 4, delta in -1_000_000i64..1_000_000) {
        let t = SimTime::from_micros(base + 2_000_000);
        let d = SimDelta::from_micros(delta);
        let moved = t.offset(d);
        prop_assert_eq!(moved.delta_since(t), d);
    }

    #[test]
    fn duration_ordering_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!(da < db, a < b);
        prop_assert_eq!(da.saturating_sub(db).as_micros(), a.saturating_sub(b));
    }
}
