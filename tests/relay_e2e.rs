//! End-to-end relay topology: two real lockstep session drivers, each
//! talking only to the relay through a [`RelaySocket`], must converge to
//! identical per-frame state hashes — the same guarantee the peer-to-peer
//! topology gives, with every datagram taking the extra hop.
//!
//! The whole exchange runs sans-io on simulated time: sessions are ticked
//! and the relay core pumped from one loop, so the test is deterministic
//! and a convergence failure reproduces exactly.

use coplay::clock::{SimDuration, SimTime};
use coplay::games::Pong;
use coplay::net::{loopback, PeerId, Transport};
use coplay::relay::{RelayConfig, RelayCore, RelaySocket};
use coplay::sync::{LockstepSession, RandomPresser, Step, SyncConfig, Topology};
use coplay::vm::Player;

/// The one address both clients are configured with.
const RELAY: PeerId = PeerId(200);
const SESSION: u32 = 9;
const FRAMES: usize = 30;

/// Routes every datagram queued on the core-side links through the relay,
/// dispatching replies to whichever link owns the destination address (the
/// loopback stand-in for one UDP socket serving many peers).
fn pump(core: &mut RelayCore<PeerId>, links: &mut [impl Transport], now: SimTime) {
    loop {
        let mut inbox = Vec::new();
        for link in links.iter_mut() {
            while let Some(d) = link.try_recv().expect("core link recv") {
                inbox.push(d);
            }
        }
        if inbox.is_empty() {
            return;
        }
        for (from, data) in inbox {
            let replies: Vec<_> = core.handle(from, &data, now).to_vec();
            for (to, bytes) in replies {
                let reached = links.iter_mut().any(|l| l.send(to, &bytes).is_ok());
                assert!(reached, "no link reaches {to}");
            }
        }
    }
}

#[test]
fn two_drivers_converge_through_the_relay() {
    let (a, core_a) = loopback(PeerId(0), RELAY);
    let (b, core_b) = loopback(PeerId(1), RELAY);
    let sock0 = RelaySocket::new(a, RELAY, SESSION);
    let sock1 = RelaySocket::new(b, RELAY, SESSION);

    let mut cfg0 = SyncConfig::two_player(0);
    let mut cfg1 = SyncConfig::two_player(1);
    for cfg in [&mut cfg0, &mut cfg1] {
        cfg.topology = Topology::Relay;
    }
    let mut site0 =
        LockstepSession::new(cfg0, Pong::new(), sock0, RandomPresser::new(Player::ONE, 1));
    let mut site1 =
        LockstepSession::new(cfg1, Pong::new(), sock1, RandomPresser::new(Player::TWO, 2));

    let mut core: RelayCore<PeerId> = RelayCore::new(RelayConfig::default());
    let mut links = [core_a, core_b];
    let mut hashes: [Vec<u64>; 2] = [Vec::new(), Vec::new()];

    let mut now = SimTime::ZERO;
    let step = SimDuration::from_millis(1);
    for _ in 0..100_000 {
        for (i, tick) in [
            site0.tick(now).expect("site 0 tick"),
            site1.tick(now).expect("site 1 tick"),
        ]
        .into_iter()
        .enumerate()
        {
            match tick {
                Step::FrameDone { report, .. } => {
                    hashes[i].push(report.state_hash.expect("lockstep hashes every frame"));
                }
                Step::Wait(_) => {}
                Step::Stopped(r) => panic!("site {i} stopped early: {r:?}"),
            }
        }
        pump(&mut core, &mut links, now);
        if hashes.iter().all(|h| h.len() >= FRAMES) {
            break;
        }
        now += step;
    }

    // The acceptance bar: identical per-frame state hashes through the
    // relay, with the relay having actually carried the traffic.
    let stats = core.stats();
    assert!(
        hashes.iter().all(|h| h.len() >= FRAMES),
        "sessions stalled: {} vs {} frames after {now} (stats: {stats:?})",
        hashes[0].len(),
        hashes[1].len(),
    );
    assert_eq!(
        hashes[0][..FRAMES],
        hashes[1][..FRAMES],
        "replicas diverged through the relay"
    );
    assert!(stats.forwarded > 0, "no traffic went through the relay");
    assert_eq!(stats.registrations, 2, "both drivers registered once");
    assert_eq!(stats.dropped_malformed, 0);
    assert_eq!(stats.dropped_backpressure, 0);

    // Orderly shutdown travels the same path: one broadcast Bye each.
    site0.stop().expect("site 0 stop");
    site1.stop().expect("site 1 stop");
    pump(&mut core, &mut links, now);
}
